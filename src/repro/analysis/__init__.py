"""Static and runtime analysis for the repo's determinism guarantees.

The repo's headline property — bit-identical results across the serial,
process-parallel, and batched-inference execution paths — is exactly the
kind of property that silently breaks when an unseeded RNG, an
unordered-set iteration, or a wall-clock read slips into a seeded code
path.  This package enforces those invariants in two complementary ways:

- :mod:`repro.analysis.linter` — an AST-based project linter
  (``repro lint``) with repo-specific rules REP001–REP008, inline
  ``# repro: allow[REPnnn] <reason>`` suppressions, and a committed
  baseline file for pre-existing debt.
- :mod:`repro.analysis.flow` — a whole-program dataflow pass
  (``repro lint --flow``) that builds a module-level call graph over
  the lint roots and enforces the concurrency/determinism contract
  (rules REP101–REP105: shared rng streams reachable from dispatched
  tasks, fork-unsafe module state, aliased out= buffers, unordered
  float reductions, captured-object mutation races).
- :mod:`repro.analysis.sarif` / :mod:`repro.analysis.explain` —
  SARIF 2.1.0 rendering for CI upload and ``repro lint --explain``
  rule documentation.
- :mod:`repro.analysis.invariants` — a runtime sanitizer:
  ``REPRO_CHECK_INVARIANTS=1`` routes simulator/state invariants
  (event-time monotonicity, capacity conservation, flow accounting,
  event-queue live-count consistency) through :func:`check`, raising
  :class:`InvariantViolation` with structured context.  The sanitizer
  observes and never perturbs: a seeded run with it enabled is
  bit-identical to one without.
"""

from repro.analysis.invariants import (
    InvariantViolation,
    check,
    invariants_enabled,
)
from repro.analysis.explain import RULE_DOCS, render_explanation
from repro.analysis.flow import analyze_paths
from repro.analysis.linter import (
    Baseline,
    Finding,
    FLOW_RULES,
    LintConfig,
    RULES,
    lint_paths,
    lint_source,
    update_baseline,
)
from repro.analysis.sarif import render_sarif

__all__ = [
    "InvariantViolation",
    "check",
    "invariants_enabled",
    "Baseline",
    "Finding",
    "FLOW_RULES",
    "LintConfig",
    "RULES",
    "RULE_DOCS",
    "analyze_paths",
    "lint_paths",
    "lint_source",
    "render_explanation",
    "render_sarif",
    "update_baseline",
]
