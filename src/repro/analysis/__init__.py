"""Static and runtime analysis for the repo's determinism guarantees.

The repo's headline property — bit-identical results across the serial,
process-parallel, and batched-inference execution paths — is exactly the
kind of property that silently breaks when an unseeded RNG, an
unordered-set iteration, or a wall-clock read slips into a seeded code
path.  This package enforces those invariants in two complementary ways:

- :mod:`repro.analysis.linter` — an AST-based project linter
  (``repro lint``) with repo-specific rules REP001–REP007, inline
  ``# repro: allow[REPXXX] <reason>`` suppressions, and a committed
  baseline file for pre-existing debt.
- :mod:`repro.analysis.invariants` — a runtime sanitizer:
  ``REPRO_CHECK_INVARIANTS=1`` routes simulator/state invariants
  (event-time monotonicity, capacity conservation, flow accounting,
  event-queue live-count consistency) through :func:`check`, raising
  :class:`InvariantViolation` with structured context.  The sanitizer
  observes and never perturbs: a seeded run with it enabled is
  bit-identical to one without.
"""

from repro.analysis.invariants import (
    InvariantViolation,
    check,
    invariants_enabled,
)
from repro.analysis.linter import (
    Baseline,
    Finding,
    LintConfig,
    RULES,
    lint_paths,
    lint_source,
)

__all__ = [
    "InvariantViolation",
    "check",
    "invariants_enabled",
    "Baseline",
    "Finding",
    "LintConfig",
    "RULES",
    "lint_paths",
    "lint_source",
]
