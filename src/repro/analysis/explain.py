"""Rule documentation for ``repro lint --explain REPxxx``.

Every rule in both families (file-local REP0xx and whole-program
REP1xx) carries a rationale tied to the repo's determinism contract
plus a minimal bad/good example pair.  A test asserts the table covers
every id in ``RULES`` and ``FLOW_RULES`` so a new rule cannot ship
undocumented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.linter import FLOW_RULES, RULES

__all__ = ["RULE_DOCS", "RuleDoc", "render_explanation"]


@dataclass(frozen=True)
class RuleDoc:
    """Human-facing documentation for one lint rule."""

    rationale: str
    bad: str
    good: str


RULE_DOCS: Dict[str, RuleDoc] = {
    "REP001": RuleDoc(
        rationale=(
            "numpy.random.default_rng() / RandomState() / random.Random() "
            "without an explicit seed pulls entropy from the OS, so the "
            "stream differs every run and the result can never be "
            "replayed; every generator in the seeded core must be "
            "constructed from a seed that is itself derived from the run "
            "configuration."
        ),
        bad="rng = np.random.default_rng()  # OS entropy",
        good="rng = np.random.default_rng(config.seed)",
    ),
    "REP002": RuleDoc(
        rationale=(
            "The module-level global streams (np.random.normal, "
            "random.random, np.random.seed) are shared by every caller in "
            "the process, so the draw sequence depends on unrelated code "
            "running first; per-component seeded Generators keep streams "
            "isolated and replayable."
        ),
        bad="np.random.seed(0)\nx = np.random.normal()",
        good="rng = np.random.default_rng(0)\nx = rng.normal()",
    ),
    "REP003": RuleDoc(
        rationale=(
            "Wall-clock and other nondeterministic reads (time.time, "
            "datetime.now, uuid4) inside a seeded core package leak host "
            "state into results; simulation time must come from the event "
            "queue and identifiers from seeded counters so runs replay "
            "bit-identically."
        ),
        bad="deadline = time.time() + flow.ttl",
        good="deadline = sim.now + flow.ttl  # event-queue clock",
    ),
    "REP004": RuleDoc(
        rationale=(
            "Iterating a set or a dict .keys() view yields elements in "
            "hash/insertion order, which PYTHONHASHSEED and code-path "
            "history randomise between runs; any float accumulation or "
            "ordered output built from the iteration is run-dependent.  "
            "sorted() makes the traversal a pure function of the contents."
        ),
        bad="for flow in active_flows:  # a set\n    total += flow.demand",
        good="for flow in sorted(active_flows, key=lambda f: f.flow_id):\n    total += flow.demand",
    ),
    "REP005": RuleDoc(
        rationale=(
            "Exact ==/!= between floats in library code encodes an "
            "accident of rounding: the comparison flips when an upstream "
            "computation is legitimately reordered (vectorised, fused), "
            "turning a bit-identity refactor into a behaviour change.  "
            "Compare against a tolerance, or restructure to avoid the "
            "comparison."
        ),
        bad="if remaining == 0.0:\n    release(link)",
        good="if abs(remaining) < 1e-12:\n    release(link)",
    ),
    "REP006": RuleDoc(
        rationale=(
            "A mutable default ([], {}, set()) is evaluated once at def "
            "time and shared by every call, so state leaks across "
            "invocations — and across workers that fork after the first "
            "call populated it."
        ),
        bad="def collect(results=[]):\n    results.append(...)",
        good="def collect(results=None):\n    results = [] if results is None else results",
    ),
    "REP007": RuleDoc(
        rationale=(
            "assert statements are stripped under python -O, so an "
            "invariant guarded only by assert silently stops being "
            "checked in optimised runs; library code raises a structured "
            "exception (or routes through repro.analysis.invariants.check) "
            "instead."
        ),
        bad="assert state.load >= 0, 'negative load'",
        good="if state.load < 0:\n    raise InvariantViolation('negative load', context=...)",
    ),
    "REP008": RuleDoc(
        rationale=(
            "A waiver naming a rule id that does not exist suppresses "
            "nothing and usually means a typo (REP105 vs REP150) — the "
            "finding it was meant to silence is still live or the waiver "
            "is dead weight; unknown ids are reported so waivers stay "
            "honest."
        ),
        # NB: examples concatenated so this file's own source lines do
        # not match the line-based waiver regex.
        bad="# repro: " + "allow[REP150] overlap is disjoint\nbuf.fill(0)",
        good="# repro: " + "allow[REP105] overlap is disjoint\nbuf.fill(0)",
    ),
    "REP101": RuleDoc(
        rationale=(
            "A generator shared with the main thread (self._rng, a module "
            "global, or anything not constructed inside the task) makes "
            "the draw order depend on the thread schedule; the repo's "
            "contract is that all shared-stream draws happen in a serial "
            "prologue before dispatch, and tasks that need randomness "
            "seed their own generator.  For process pools only "
            "module-global streams are flagged: captured objects are "
            "pickled per worker, but a module global re-imports in the "
            "worker with fresh (wrong) state."
        ),
        bad=(
            "def task(self):\n"
            "    return self.rng.normal()  # shared stream\n"
            "executor.submit(self.task)"
        ),
        good=(
            "noise = self.rng.normal()      # serial prologue\n"
            "executor.submit(self.task, noise)\n"
            "# or: task constructs rng = default_rng(seed) itself"
        ),
    ),
    "REP102": RuleDoc(
        rationale=(
            "A module-level object written on a threaded path (a cached "
            "executor, a results dict) survives fork() in a broken state: "
            "the child inherits the parent's memory but none of its "
            "threads.  Modules that mix threads with module state must "
            "install an os.register_at_fork(after_in_child=...) hook that "
            "resets the state, as rl/acktr.py does for its K-FAC executor."
        ),
        bad=(
            "_EXECUTOR = None\n"
            "def get_executor():\n"
            "    global _EXECUTOR\n"
            "    _EXECUTOR = ThreadPoolExecutor(1)"
        ),
        good=(
            "def _reset_after_fork():\n"
            "    global _EXECUTOR\n"
            "    _EXECUTOR = None\n"
            "os.register_at_fork(after_in_child=_reset_after_fork)"
        ),
    ),
    "REP103": RuleDoc(
        rationale=(
            "Two in-flight tasks handed the same out= buffer (or any "
            "buffer the task writes) race on its contents; whichever "
            "finishes last wins, so results depend on scheduling.  Each "
            "concurrent task needs a private buffer."
        ),
        bad=(
            "f1 = ex.submit(work, scratch)\n"
            "f2 = ex.submit(work, scratch)  # same buffer in flight"
        ),
        good=(
            "f1 = ex.submit(work, scratch_a)\n"
            "f2 = ex.submit(work, scratch_b)"
        ),
    ),
    "REP104": RuleDoc(
        rationale=(
            "Float addition is not associative, so sum()/+= over a set, "
            ".keys() view, or worker-merged iterable changes bitwise with "
            "element order — and hash randomisation reorders sets every "
            "run.  Sorting first fixes the summation order."
        ),
        bad="total = sum(delays)  # delays: Set[float]",
        good="total = sum(sorted(delays))",
    ),
    "REP105": RuleDoc(
        rationale=(
            "An object captured by a submitted task is shared, not copied "
            "(thread pools share references; even with process pools the "
            "pickle happens at an unspecified point).  Mutating it between "
            "submit() and result() races the task's reads.  Mutate after "
            "the join, or pass a copy."
        ),
        bad=(
            "future = ex.submit(consume, batch)\n"
            "batch.clear()            # task may still be reading\n"
            "future.result()"
        ),
        good=(
            "future = ex.submit(consume, batch)\n"
            "future.result()\n"
            "batch.clear()            # after the join"
        ),
    ),
}


def render_explanation(rule: str) -> str:
    """Full text block for one rule id; raises KeyError for unknown ids."""
    rule = rule.upper()
    all_rules = {**RULES, **FLOW_RULES}
    if rule not in RULE_DOCS or rule not in all_rules:
        known = ", ".join(sorted(set(all_rules) | set(RULE_DOCS)))
        raise KeyError(f"unknown rule {rule!r}; known rules: {known}")
    doc = RULE_DOCS[rule]
    family = "whole-program (repro lint --flow)" if rule in FLOW_RULES else "file-local"
    out = [
        f"{rule}: {all_rules[rule]}",
        f"family: {family}",
        "",
        "Why",
        "---",
        doc.rationale,
        "",
        "Bad",
        "---",
        doc.bad,
        "",
        "Good",
        "----",
        doc.good,
        "",
        f"Waive a confirmed-safe site with: # repro: allow[{rule}] <justification>",
    ]
    return "\n".join(out)
