"""Runtime invariant sanitizer.

Library code must not rely on bare ``assert`` for load-bearing invariants:
``python -O`` strips asserts, silently disabling the very checks that
guard the determinism and conservation properties the repo advertises
(lint rule REP007).  This module provides the replacement:

- :class:`InvariantViolation` — raised when an internal invariant breaks,
  carrying a structured ``context`` dict (flow ids, loads, capacities)
  so failures in long seeded runs are diagnosable from the message alone.
- :func:`check` — ``assert`` with structure: raises on a falsy condition,
  survives ``-O``, and attaches the keyword context.
- :func:`invariants_enabled` — reads ``REPRO_CHECK_INVARIANTS``; when
  truthy, the simulator additionally runs its *expensive* per-event
  invariant sweep (capacity conservation over every node/link, event
  queue live-count recount, flow-accounting cross-checks).  The cheap
  always-on checks do not consult this flag.

The sanitizer only observes: it never draws randomness, never mutates
simulation state, and therefore cannot perturb a seeded run — a run with
``REPRO_CHECK_INVARIANTS=1`` is bit-identical to one without.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

__all__ = ["InvariantViolation", "check", "invariants_enabled"]

_ENV_FLAG = "REPRO_CHECK_INVARIANTS"
_TRUTHY = frozenset({"1", "true", "yes", "on"})


class InvariantViolation(AssertionError):
    """An internal invariant of the simulation/training stack broke.

    Subclasses :class:`AssertionError` so existing ``pytest.raises``
    call sites and property-based tests that expect assertion-style
    failures keep working, while surviving ``python -O``.

    Attributes:
        context: Structured key/value diagnostics attached at the check
            site (e.g. ``flow_id=…, load=…, capacity=…``).
    """

    def __init__(self, message: str, **context: Any) -> None:
        self.context: Dict[str, Any] = dict(context)
        if context:
            details = ", ".join(f"{k}={v!r}" for k, v in context.items())
            message = f"{message} [{details}]"
        super().__init__(message)


def check(condition: object, message: str, **context: Any) -> None:
    """Raise :class:`InvariantViolation` when ``condition`` is falsy.

    Unlike ``assert``, this survives ``python -O`` and attaches the
    keyword ``context`` to the raised exception for structured
    diagnostics::

        check(load >= 0, "negative node load", node=node, load=load)
    """
    if not condition:
        raise InvariantViolation(message, **context)


def invariants_enabled(env: Optional[Dict[str, str]] = None) -> bool:
    """True when ``REPRO_CHECK_INVARIANTS`` requests the expensive
    per-event sanitizer sweep (``1``/``true``/``yes``/``on``,
    case-insensitive).  ``env`` overrides ``os.environ`` for tests."""
    source = os.environ if env is None else env
    return source.get(_ENV_FLAG, "").strip().lower() in _TRUTHY
