"""Whole-program concurrency & determinism dataflow analyzer.

``repro lint --flow`` runs this pass on top of the file-local REP0xx
linter.  Where :mod:`repro.analysis.linter` checks one module at a time,
this pass parses every module under the lint roots into one *program*:
a symbol index (functions, classes, methods, module globals), a
module-level call graph, and per-function fact summaries that are
propagated transitively along call edges.  The facts encode the repo's
concurrency contract — rng draws hoisted into a serial prologue before
any executor dispatch, no shared mutable state crossing a dispatch
boundary, fork-reset hooks guarding module-level executors — which the
process-pool fan-out (PR 1) and the threaded K-FAC path (PR 8) rely on
but no file-local rule can see.

Function classification lattice
-------------------------------

Every function gets a summary along four axes:

- **rng consumption** — each draw (``<receiver>.normal()``-style call on
  an rng-named receiver, or a ``numpy.random`` global call) is tagged
  with where its generator came from: ``local`` (constructed in the
  function body), ``param`` (flowed in through an argument), ``self``
  (shared object state), ``global`` (module-level), or ``unknown``.
  ``param`` draws are re-tagged at every call edge by substituting the
  caller's argument expression, so a task that seeds its *own* generator
  stays ``local`` all the way up the graph.
- **argument mutation** — the set of parameters the function mutates
  (attribute/subscript stores, mutating method calls, ``out=`` targets),
  closed under calls via a fixpoint so ``f(x)`` counts as mutating ``x``
  when ``f`` does.
- **module-state mutation** — writes to ``global``-declared names or to
  module-level containers.
- **dispatch** — submission of work to an executor (``.submit`` →
  thread pool) or a process pool (``.apply_async``/``run_tasks`` and
  friends), with the dispatched callable and captured arguments.

Rules
-----

======= ==============================================================
REP101  An rng draw whose generator is *not* task-local is reachable
        from a callable dispatched to a thread pool (shared stream →
        schedule-dependent draws); for process pools only module-global
        generators are flagged (task state is pickled per worker).
REP102  Module-level state is written on a thread-dispatched path, or
        in a module that dispatches to threads, and the module installs
        no ``os.register_at_fork`` reset hook — a forked worker inherits
        a dead thread's state.
REP103  The same buffer is captured by two or more concurrent dispatch
        sites and the task writes it (``out=``/mutation) — the tasks may
        alias the buffer under concurrency.
REP104  An order-sensitive float reduction (``sum()``/``math.fsum`` or
        a ``+=`` accumulation referencing the loop variable) runs over
        an unordered iterable — hash randomisation reorders the
        summands and float addition does not commute bitwise.
REP105  An object captured by an in-flight executor/pool task is
        mutated between submission and ``.result()``/``.get()`` — the
        task races the mutation.
======= ==============================================================

Findings reuse :class:`repro.analysis.linter.Finding`, inline
``# repro: allow[REPxxx]`` waivers, and the committed baseline.

Known false negatives (documented, by construction): calls through
variables whose method name is defined by more than one class (dynamic
dispatch is resolved only when the method name is unique program-wide),
callables passed as values (e.g. the ``fn`` argument the process pool
itself forwards), nested function/lambda tasks, and aliasing through
containers.  The analyzer over-approximates in the other direction only
through unique-name method resolution; waivers carry the justification
when a flagged site is provably safe.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.linter import (
    FLOW_RULES,
    Finding,
    _ImportTable,
    _is_keys_call,
    _is_set_expression,
    _iter_python_files,
    _relative_posix,
    _suppressed_rules,
)

__all__ = ["FLOW_RULES", "FlowProgram", "analyze_paths", "build_program"]

#: Generator draw methods (numpy Generator/RandomState + stdlib Random).
_RNG_METHODS = frozenset(
    {
        "random",
        "normal",
        "standard_normal",
        "uniform",
        "integers",
        "randint",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "exponential",
        "poisson",
        "binomial",
        "multinomial",
        "geometric",
        "gamma",
        "beta",
        "lognormal",
        "bytes",
        "sample",
        "randrange",
        "gauss",
    }
)

#: Receiver names that look like a random generator (``rng``,
#: ``self._rng``, ``episode_rng`` ...).
_RNG_NAME_RE = re.compile(r"(^|_)rng$", re.IGNORECASE)

#: Container methods that mutate their receiver.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "add",
        "discard",
        "update",
        "setdefault",
        "fill",
        "resize",
        "put",
        "setflags",
        "appendleft",
        "popleft",
    }
)

#: ``<executor>.submit(fn, ...)`` — concurrent.futures thread dispatch
#: (the repo's only Executor use; a ProcessPoolExecutor would be
#: analyzed under the stricter thread rules, which is safe).
_THREAD_DISPATCH = frozenset({"submit"})

#: ``<pool>.apply_async(fn, args)`` etc. — multiprocessing dispatch.
_PROCESS_DISPATCH = frozenset(
    {"apply_async", "map_async", "starmap_async", "imap", "imap_unordered"}
)

#: Synchronous process fan-out helpers resolved by name: the call blocks
#: until every task is done, so no concurrent window exists afterwards.
_BLOCKING_DISPATCH_FUNCS = frozenset({"run_tasks"})

#: Methods that join a dispatch handle and end the concurrent window.
_JOIN_METHODS = frozenset({"result", "get"})

_FAR_LINE = 10**9


def _dotted_text(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    cursor: ast.expr = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


def _aliases(a: str, b: str) -> bool:
    """Do two dotted paths name overlapping storage (equal or one a
    prefix of the other)?"""
    return a == b or a.startswith(b + ".") or b.startswith(a + ".")


@dataclass
class _RngDraw:
    """One rng draw site, tagged with where the generator came from."""

    kind: str  # local | param | self | global | unknown
    receiver: str
    path: str
    line: int
    param: Optional[str] = None  # receiver root when kind == "param"


@dataclass
class _Mutation:
    """One mutation event: ``target`` is the dotted path being written."""

    target: str
    line: int
    col: int
    via: str = ""  # callee qualname for call-induced mutations


@dataclass
class _CallSite:
    node: ast.Call
    dotted: str  # dotted text of the callee expression
    receiver: Optional[str]  # dotted receiver for method-style calls
    args: List[Optional[str]]  # dotted texts of positional args
    arg_is_call: List[bool]  # positional arg is a fresh Call expression
    kwargs: Dict[str, Optional[str]]
    targets: List[Tuple[str, int]] = field(default_factory=list)  # (qualname, offset)


@dataclass
class _DispatchSite:
    node: ast.Call
    kind: str  # "thread" | "process"
    blocking: bool
    callable_expr: Optional[ast.expr]
    captured: List[str]  # dotted captured args (bound receiver first)
    captured_pos: List[Optional[int]]  # callee param slot per captured arg
    line: int
    entries: List[str] = field(default_factory=list)  # resolved task qualnames
    window_end: int = _FAR_LINE


@dataclass
class _FunctionInfo:
    qualname: str
    module: "_ModuleInfo"
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    params: List[str]
    class_qualname: Optional[str]
    local_names: Set[str] = field(default_factory=set)
    constructed: Set[str] = field(default_factory=set)  # names bound to Call results
    aliases: Dict[str, str] = field(default_factory=dict)  # name -> dotted source
    rng_draws: List[_RngDraw] = field(default_factory=list)
    global_writes: List[Tuple[str, int, int]] = field(default_factory=list)
    direct_mutations: List[_Mutation] = field(default_factory=list)
    call_sites: List[_CallSite] = field(default_factory=list)
    dispatches: List[_DispatchSite] = field(default_factory=list)
    out_writes: List[Tuple[str, int, int]] = field(default_factory=list)
    out_params: Set[str] = field(default_factory=set)
    reductions: List[Tuple[str, int, int]] = field(default_factory=list)
    mutated_params: Set[str] = field(default_factory=set)
    mutations: List[_Mutation] = field(default_factory=list)  # incl. call-induced


@dataclass
class _ClassInfo:
    qualname: str
    module: "_ModuleInfo"
    bases: List[str]  # dotted base-class texts, unresolved
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class _ModuleInfo:
    name: str
    path: str  # posix path relative to the lint root
    lines: List[str]
    imports: _ImportTable
    global_names: Set[str] = field(default_factory=set)
    has_fork_hook: bool = False
    has_thread_dispatch: bool = False
    functions: List[_FunctionInfo] = field(default_factory=list)


class FlowProgram:
    """Symbol index + call graph over every analyzed module."""

    def __init__(self) -> None:
        self.modules: Dict[str, _ModuleInfo] = {}
        self.functions: Dict[str, _FunctionInfo] = {}
        self.classes: Dict[str, _ClassInfo] = {}
        self.methods_by_name: Dict[str, List[str]] = {}

    # -- symbol lookup -------------------------------------------------

    def _lookup_method(
        self, class_qualname: str, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve ``name`` on a class, walking indexed base classes."""
        seen = _seen if _seen is not None else set()
        if class_qualname in seen:
            return None
        seen.add(class_qualname)
        cls = self.classes.get(class_qualname)
        if cls is None:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            base_qual = self._resolve_symbol(base, cls.module)
            if base_qual is not None and base_qual in self.classes:
                found = self._lookup_method(base_qual, name, seen)
                if found is not None:
                    return found
        return None

    def _resolve_symbol(self, dotted: str, module: _ModuleInfo) -> Optional[str]:
        """Map a dotted name used inside ``module`` to an index qualname."""
        root, sep, rest = dotted.partition(".")
        resolved_root = module.imports._names.get(root)
        candidates = []
        if resolved_root is not None:
            candidates.append(resolved_root + (("." + rest) if sep else ""))
        candidates.append(f"{module.name}.{dotted}")
        candidates.append(dotted)
        for candidate in candidates:
            if candidate in self.functions or candidate in self.classes:
                return candidate
        return None

    def resolve_call(
        self, dotted: str, fn: _FunctionInfo
    ) -> List[Tuple[str, int]]:
        """Resolve a callee expression to ``(qualname, arg_offset)``
        pairs; offset 1 means the receiver binds the callee's ``self``.

        Resolution order: ``self``/``cls`` methods through the class
        hierarchy, then imports and same-module symbols, then — for
        method-style calls on arbitrary receivers — a unique-name
        fallback that only fires when exactly one class program-wide
        defines the method (ambiguous names stay unresolved: a
        documented false negative rather than a guessed edge).
        """
        parts = dotted.split(".")
        if parts[0] in ("self", "cls") and fn.class_qualname is not None:
            if len(parts) == 2:
                found = self._lookup_method(fn.class_qualname, parts[1])
                if found is not None:
                    return [(found, 1)]
            return self._unique_method(parts[-1]) if len(parts) > 2 else []
        resolved = self._resolve_symbol(dotted, fn.module)
        if resolved is not None:
            if resolved in self.functions:
                return [(resolved, 0)]
            init = self._lookup_method(resolved, "__init__")
            if init is not None:
                return [(init, 1)]
            return []
        if len(parts) >= 2:
            return self._unique_method(parts[-1])
        return []

    def _unique_method(self, name: str) -> List[Tuple[str, int]]:
        hits = self.methods_by_name.get(name, [])
        if len(hits) == 1:
            return [(hits[0], 1)]
        return []

    def reachable(self, entry: str) -> List[str]:
        """Qualnames reachable from ``entry`` (inclusive) via call edges."""
        seen: Set[str] = set()
        stack = [entry]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.functions:
                continue
            seen.add(current)
            for site in self.functions[current].call_sites:
                for qualname, _offset in site.targets:
                    if qualname not in seen:
                        stack.append(qualname)
        return sorted(seen)


def _module_name(rel_posix: str) -> str:
    parts = rel_posix[:-3].split("/") if rel_posix.endswith(".py") else rel_posix.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


def _param_names(args: ast.arguments) -> List[str]:
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names.extend(a.arg for a in args.args)
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _module_level_targets(tree: ast.Module) -> Set[str]:
    """Names assigned at module scope (including inside top-level
    ``if``/``try`` blocks)."""
    names: Set[str] = set()
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.If, ast.Try)):
            stack.extend(stmt.body)
            stack.extend(getattr(stmt, "orelse", []))
            stack.extend(getattr(stmt, "finalbody", []))
            for handler in getattr(stmt, "handlers", []):
                stack.extend(handler.body)
            continue
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


class _FunctionScanner:
    """Extracts the syntactic facts of one function body."""

    def __init__(self, fn: _FunctionInfo) -> None:
        self.fn = fn
        self.declared_globals: Set[str] = set()

    def scan(self) -> None:
        fn = self.fn
        body = fn.node.body
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    self.declared_globals.update(node.names)
        # Two passes: bindings first so rng-source classification sees
        # every local/alias regardless of statement order, facts second.
        for stmt in body:
            for node in ast.walk(stmt):
                self._scan_bindings(node)
        for stmt in body:
            for node in ast.walk(stmt):
                self._scan_node(node)
        self._attach_dispatch_windows()

    # -- bindings ------------------------------------------------------

    def _scan_bindings(self, node: ast.AST) -> None:
        fn = self.fn
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                fn.local_names.add(target.id)
                if isinstance(node.value, ast.Call):
                    fn.constructed.add(target.id)
                    fn.aliases.pop(target.id, None)
                else:
                    source = _dotted_text(node.value)
                    if source is not None and source != target.id:
                        fn.aliases[target.id] = source
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                fn.local_names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    fn.local_names.add(name_node.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            fn.local_names.add(name_node.id)
                            fn.constructed.add(name_node.id)

    # -- resolution helpers --------------------------------------------

    def _resolve_alias(self, dotted: str) -> str:
        seen: Set[str] = set()
        while True:
            root, sep, rest = dotted.partition(".")
            if root in seen or root not in self.fn.aliases:
                return dotted
            seen.add(root)
            dotted = self.fn.aliases[root] + (("." + rest) if sep else "")

    def _classify_source(self, dotted: str) -> Tuple[str, Optional[str]]:
        """Where does the object named by ``dotted`` come from?

        Returns ``(kind, param_name)`` with kind in local / param / self
        / global / unknown.
        """
        fn = self.fn
        dotted = self._resolve_alias(dotted)
        root = dotted.split(".")[0]
        if root in ("self", "cls"):
            return "self", None
        if root in fn.params:
            return "param", root
        if root in fn.constructed:
            return "local", None
        if root in self.declared_globals or (
            root in fn.module.global_names and root not in fn.local_names
        ):
            return "global", None
        if root in fn.local_names:
            return "local", None
        return "unknown", None

    # -- per-node facts ------------------------------------------------

    def _scan_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._scan_call(node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._record_store(target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._record_store(target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._scan_reduction_loop(node)

    def _record_store(self, target: ast.expr) -> None:
        fn = self.fn
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                fn.global_writes.append(
                    (target.id, target.lineno, target.col_offset)
                )
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        container = target.value if isinstance(target, ast.Subscript) else target
        dotted = _dotted_text(container)
        if dotted is None:
            return
        dotted = self._resolve_alias(dotted)
        root = dotted.split(".")[0]
        line, col = target.lineno, target.col_offset
        fn.direct_mutations.append(_Mutation(target=dotted, line=line, col=col))
        if root not in fn.params and root not in fn.local_names:
            if root in fn.module.global_names or root in self.declared_globals:
                fn.global_writes.append((root, line, col))

    def _scan_call(self, call: ast.Call) -> None:
        fn = self.fn
        func = call.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = _dotted_text(func.value)
            if attr in _THREAD_DISPATCH:
                self._record_dispatch(call, "thread", blocking=False)
            elif attr in _PROCESS_DISPATCH:
                self._record_dispatch(call, "process", blocking=False)
            if receiver is not None:
                resolved_receiver = self._resolve_alias(receiver)
                if attr in _RNG_METHODS and _RNG_NAME_RE.search(
                    resolved_receiver.rsplit(".", 1)[-1]
                ):
                    kind, param = self._classify_source(resolved_receiver)
                    fn.rng_draws.append(
                        _RngDraw(
                            kind=kind,
                            receiver=resolved_receiver,
                            path=fn.module.path,
                            line=call.lineno,
                            param=param,
                        )
                    )
                if attr in _MUTATING_METHODS:
                    self._record_receiver_mutation(resolved_receiver, call)
                self._record_call_site(call, f"{receiver}.{attr}", receiver)
            # numpy.random global draws count as module-global streams.
            full = fn.module.imports.resolve(func)
            if full is not None and full.startswith("numpy.random."):
                leaf = full.rsplit(".", 1)[1]
                if leaf[:1].islower() and leaf != "default_rng":
                    fn.rng_draws.append(
                        _RngDraw(
                            kind="global",
                            receiver=full,
                            path=fn.module.path,
                            line=call.lineno,
                        )
                    )
        elif isinstance(func, ast.Name):
            if func.id in _BLOCKING_DISPATCH_FUNCS:
                self._record_dispatch(call, "process", blocking=True)
            self._record_call_site(call, func.id, None)
            if func.id == "sum" and call.args:
                self._check_reduction_arg(call.args[0], call)
        if isinstance(func, ast.Attribute):
            full = fn.module.imports.resolve(func)
            if full == "math.fsum" and call.args:
                self._check_reduction_arg(call.args[0], call)
        for kw in call.keywords:
            if kw.arg == "out":
                dotted = _dotted_text(kw.value)
                if dotted is not None:
                    dotted = self._resolve_alias(dotted)
                    fn.out_writes.append((dotted, call.lineno, call.col_offset))
                    fn.direct_mutations.append(
                        _Mutation(target=dotted, line=call.lineno, col=call.col_offset)
                    )
                    root = dotted.split(".")[0]
                    if root in fn.params:
                        fn.out_params.add(root)
                    elif root not in fn.local_names and (
                        root in fn.module.global_names
                    ):
                        fn.global_writes.append(
                            (root, call.lineno, call.col_offset)
                        )

    def _record_receiver_mutation(self, receiver: str, call: ast.Call) -> None:
        fn = self.fn
        root = receiver.split(".")[0]
        fn.direct_mutations.append(
            _Mutation(target=receiver, line=call.lineno, col=call.col_offset)
        )
        if root not in fn.params and root not in fn.local_names:
            if root in fn.module.global_names or root in self.declared_globals:
                fn.global_writes.append((root, call.lineno, call.col_offset))

    def _record_call_site(
        self, call: ast.Call, dotted: str, receiver: Optional[str]
    ) -> None:
        args = [_dotted_text(arg) for arg in call.args]
        arg_is_call = [isinstance(arg, ast.Call) for arg in call.args]
        kwargs = {
            kw.arg: _dotted_text(kw.value)
            for kw in call.keywords
            if kw.arg is not None
        }
        self.fn.call_sites.append(
            _CallSite(
                node=call,
                dotted=dotted,
                receiver=receiver,
                args=args,
                arg_is_call=arg_is_call,
                kwargs=kwargs,
            )
        )

    def _record_dispatch(self, call: ast.Call, kind: str, blocking: bool) -> None:
        captured: List[str] = []
        positions: List[Optional[int]] = []
        callable_expr: Optional[ast.expr] = call.args[0] if call.args else None
        if callable_expr is not None and isinstance(callable_expr, ast.Attribute):
            bound = _dotted_text(callable_expr.value)
            if bound is not None:
                captured.append(self._resolve_alias(bound))
                positions.append(0)
        task_args: List[ast.expr] = list(call.args[1:])
        # ``apply_async(fn, (a, b))`` packs the task args in a tuple.
        if (
            kind == "process"
            and not blocking
            and len(task_args) == 1
            and isinstance(task_args[0], (ast.Tuple, ast.List))
        ):
            task_args = list(task_args[0].elts)
        for index, arg in enumerate(task_args):
            dotted = _dotted_text(arg)
            if dotted is not None:
                captured.append(self._resolve_alias(dotted))
                positions.append(index + 1)
        for kw in call.keywords:
            dotted = _dotted_text(kw.value)
            if dotted is not None:
                captured.append(self._resolve_alias(dotted))
                positions.append(None)
        self.fn.dispatches.append(
            _DispatchSite(
                node=call,
                kind=kind,
                blocking=blocking,
                callable_expr=callable_expr,
                captured=captured,
                captured_pos=positions,
                line=call.lineno,
            )
        )

    # -- REP104 reductions ---------------------------------------------

    def _is_unordered_iterable(self, node: ast.expr) -> bool:
        if _is_set_expression(node) or _is_keys_call(node):
            return True
        if isinstance(node, ast.GeneratorExp) and node.generators:
            return self._is_unordered_iterable(node.generators[0].iter)
        return False

    def _check_reduction_arg(self, arg: ast.expr, call: ast.Call) -> None:
        if self._is_unordered_iterable(arg):
            self.fn.reductions.append(
                (
                    "sum() over an unordered iterable: hash randomisation "
                    "reorders the summands and float addition does not "
                    "commute bitwise; sort the iterable first",
                    call.lineno,
                    call.col_offset,
                )
            )

    def _scan_reduction_loop(self, loop: Union[ast.For, ast.AsyncFor]) -> None:
        if not self._is_unordered_iterable(loop.iter):
            return
        loop_vars = {
            name.id for name in ast.walk(loop.target) if isinstance(name, ast.Name)
        }
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                    value_names = {
                        name.id
                        for name in ast.walk(node.value)
                        if isinstance(name, ast.Name)
                    }
                    if value_names & loop_vars:
                        self.fn.reductions.append(
                            (
                                "+= accumulation over an unordered iterable "
                                "is order-sensitive for floats; iterate "
                                "sorted(...) instead",
                                node.lineno,
                                node.col_offset,
                            )
                        )

    # -- dispatch windows ----------------------------------------------

    def _attach_dispatch_windows(self) -> None:
        """For each non-blocking dispatch assigned to a handle, close the
        concurrent window at the first ``handle.result()``/``.get()``."""
        fn = self.fn
        handle_of: Dict[int, str] = {}
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                for node in ast.walk(stmt.value):
                    if isinstance(node, ast.Call):
                        handle_of[id(node)] = target.id
        joins: List[Tuple[str, int]] = []
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _JOIN_METHODS
            ):
                receiver = _dotted_text(node.func.value)
                if receiver is not None:
                    joins.append((receiver.split(".")[0], node.lineno))
        for site in fn.dispatches:
            if site.blocking:
                site.window_end = site.line  # no window: the call joins
                continue
            handle = handle_of.get(id(site.node))
            if handle is None:
                continue
            ends = [line for name, line in joins if name == handle and line > site.line]
            if ends:
                site.window_end = min(ends)


def build_program(
    paths: Iterable[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
) -> FlowProgram:
    """Parse every ``.py`` file under ``paths`` into one program index."""
    program = FlowProgram()
    root_path = Path(root) if root is not None else Path.cwd()
    for file in _iter_python_files(paths):
        rel = _relative_posix(file, root_path)
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (SyntaxError, UnicodeDecodeError):
            continue  # the file-local pass reports REP000 for these
        imports = _ImportTable()
        imports.visit_imports(tree)
        module = _ModuleInfo(
            name=_module_name(rel),
            path=rel,
            lines=source.splitlines(),
            imports=imports,
            global_names=_module_level_targets(tree),
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                full = imports.resolve(node.func)
                if full == "os.register_at_fork":
                    module.has_fork_hook = True
        program.modules[module.name] = module

        def index_function(
            node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
            class_qualname: Optional[str],
        ) -> _FunctionInfo:
            prefix = class_qualname if class_qualname is not None else module.name
            fn = _FunctionInfo(
                qualname=f"{prefix}.{node.name}",
                module=module,
                node=node,
                params=_param_names(node.args),
                class_qualname=class_qualname,
            )
            program.functions[fn.qualname] = fn
            module.functions.append(fn)
            return fn

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index_function(stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                cls = _ClassInfo(
                    qualname=f"{module.name}.{stmt.name}",
                    module=module,
                    bases=[
                        dotted
                        for dotted in (_dotted_text(base) for base in stmt.bases)
                        if dotted is not None
                    ],
                )
                program.classes[cls.qualname] = cls
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = index_function(member, cls.qualname)
                        cls.methods[member.name] = fn.qualname
                        program.methods_by_name.setdefault(
                            member.name, []
                        ).append(fn.qualname)

    for fn in program.functions.values():
        _FunctionScanner(fn).scan()
        if any(site.kind == "thread" for site in fn.dispatches):
            fn.module.has_thread_dispatch = True

    _resolve_program(program)
    _close_mutations(program)
    return program


def _resolve_program(program: FlowProgram) -> None:
    for fn in program.functions.values():
        for site in fn.call_sites:
            site.targets = program.resolve_call(site.dotted, fn)
        for dispatch in fn.dispatches:
            if dispatch.callable_expr is None:
                continue
            dotted = _dotted_text(dispatch.callable_expr)
            if dotted is None:
                continue
            dispatch.entries = [
                qualname
                for qualname, _offset in program.resolve_call(
                    fn.aliases.get(dotted, dotted), fn
                )
            ]


def _close_mutations(program: FlowProgram) -> None:
    """Fixpoint: a function mutates parameter ``p`` if it passes ``p``
    (or storage rooted at ``p``) to a callee that mutates the matching
    parameter.  Afterwards, materialize call-induced mutation events."""
    for fn in program.functions.values():
        for mutation in fn.direct_mutations:
            root = mutation.target.split(".")[0]
            if root in fn.params:
                fn.mutated_params.add(root)

    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for fn in program.functions.values():
            for site in fn.call_sites:
                for root in _mutated_call_roots(program, site):
                    if root in fn.params and root not in fn.mutated_params:
                        fn.mutated_params.add(root)
                        changed = True

    for fn in program.functions.values():
        fn.mutations = list(fn.direct_mutations)
        for site in fn.call_sites:
            for dotted, qualname in _mutated_call_targets(program, site):
                fn.mutations.append(
                    _Mutation(
                        target=dotted,
                        line=site.node.lineno,
                        col=site.node.col_offset,
                        via=qualname,
                    )
                )


def _mutated_call_targets(
    program: FlowProgram, site: _CallSite
) -> List[Tuple[str, str]]:
    """(dotted argument, callee) pairs the call mutates via the callee."""
    out: List[Tuple[str, str]] = []
    for qualname, offset in site.targets:
        callee = program.functions.get(qualname)
        if callee is None or not callee.mutated_params:
            continue
        if offset == 1 and site.receiver is not None and callee.params:
            if callee.params[0] in callee.mutated_params:
                out.append((site.receiver, qualname))
        for index, dotted in enumerate(site.args):
            if dotted is None:
                continue
            pindex = index + offset
            if pindex < len(callee.params) and (
                callee.params[pindex] in callee.mutated_params
            ):
                out.append((dotted, qualname))
        for name, dotted in site.kwargs.items():
            if dotted is not None and name in callee.mutated_params:
                out.append((dotted, qualname))
    return out


def _mutated_call_roots(program: FlowProgram, site: _CallSite) -> Set[str]:
    return {
        dotted.split(".")[0] for dotted, _ in _mutated_call_targets(program, site)
    }


# ---------------------------------------------------------------------------
# rng summaries (REP101)
# ---------------------------------------------------------------------------


_MAX_DRAWS_PER_SUMMARY = 8


def _rng_summary(
    program: FlowProgram,
    qualname: str,
    cache: Dict[str, List[_RngDraw]],
    stack: Set[str],
) -> List[_RngDraw]:
    """Transitive rng draws of ``qualname``, with ``param``-sourced draws
    re-tagged through each call edge (a callee drawing from its ``rng``
    parameter is ``local`` to a caller that constructs the generator)."""
    if qualname in cache:
        return cache[qualname]
    if qualname in stack:
        return []  # recursion: the cycle's draws are found via other paths
    fn = program.functions.get(qualname)
    if fn is None:
        return []
    stack.add(qualname)
    draws: List[_RngDraw] = list(fn.rng_draws)
    for site in fn.call_sites:
        for target, offset in site.targets:
            for draw in _rng_summary(program, target, cache, stack):
                if len(draws) >= _MAX_DRAWS_PER_SUMMARY:
                    break
                if draw.kind != "param" or draw.param is None:
                    draws.append(draw)
                    continue
                callee = program.functions[target]
                arg = _argument_for_param(site, callee, draw.param, offset)
                if arg is None:
                    draws.append(
                        _RngDraw("unknown", draw.receiver, draw.path, draw.line)
                    )
                    continue
                dotted, is_call = arg
                if is_call:
                    kind, param = "local", None
                else:
                    scanner = _FunctionScanner(fn)
                    for stmt in fn.node.body:
                        for node in ast.walk(stmt):
                            scanner._scan_bindings(node)
                    kind, param = scanner._classify_source(dotted or "")
                if kind != "local":
                    draws.append(
                        _RngDraw(kind, draw.receiver, draw.path, draw.line, param)
                    )
    stack.discard(qualname)
    cache[qualname] = draws
    return draws


def _argument_for_param(
    site: _CallSite, callee: _FunctionInfo, param: str, offset: int
) -> Optional[Tuple[Optional[str], bool]]:
    """The caller-side argument bound to ``param``: (dotted, is_call)."""
    if param in site.kwargs:
        return site.kwargs[param], False
    try:
        pindex = callee.params.index(param)
    except ValueError:
        return None
    if offset == 1 and pindex == 0:
        return (site.receiver, False) if site.receiver is not None else None
    aindex = pindex - offset
    if 0 <= aindex < len(site.args):
        return site.args[aindex], site.arg_is_call[aindex]
    return None


# ---------------------------------------------------------------------------
# rule evaluation
# ---------------------------------------------------------------------------


def _emit(
    findings: List[Finding],
    rule: str,
    module: _ModuleInfo,
    line: int,
    col: int,
    message: str,
) -> None:
    findings.append(
        Finding(rule=rule, path=module.path, line=line, col=col, message=message)
    )


def _check_rep101(program: FlowProgram, findings: List[Finding]) -> None:
    cache: Dict[str, List[_RngDraw]] = {}
    for fn in program.functions.values():
        for site in fn.dispatches:
            for entry in site.entries:
                for draw in _rng_summary(program, entry, cache, set()):
                    if site.kind == "thread" and draw.kind == "local":
                        continue
                    if site.kind == "process" and draw.kind != "global":
                        continue
                    pool = "thread executor" if site.kind == "thread" else "process pool"
                    _emit(
                        findings,
                        "REP101",
                        fn.module,
                        site.line,
                        site.node.col_offset,
                        f"task {entry}() dispatched to a {pool} reaches an rng "
                        f"draw on {draw.receiver!r} ({draw.path}:{draw.line}, "
                        f"{draw.kind} stream); hoist the draw into the serial "
                        "prologue or seed a task-local generator",
                    )
                    break  # one finding per (site, entry)


def _check_rep102(program: FlowProgram, findings: List[Finding]) -> None:
    threaded: Set[str] = set()
    for fn in program.functions.values():
        for site in fn.dispatches:
            if site.kind == "thread":
                for entry in site.entries:
                    threaded.update(program.reachable(entry))
    for fn in program.functions.values():
        if not fn.global_writes:
            continue
        if fn.module.has_fork_hook:
            continue
        if fn.qualname not in threaded and not fn.module.has_thread_dispatch:
            continue
        reported: Set[str] = set()
        for name, line, col in fn.global_writes:
            if name in reported:
                continue
            reported.add(name)
            why = (
                "is reachable from a thread-dispatched task"
                if fn.qualname in threaded
                else "lives in a module that dispatches to a thread executor"
            )
            _emit(
                findings,
                "REP102",
                fn.module,
                line,
                col,
                f"module-level state {name!r} is written by {fn.qualname}() "
                f"which {why}, and the module installs no os.register_at_fork "
                "reset hook; a forked worker would inherit stale state",
            )


def _check_rep103(program: FlowProgram, findings: List[Finding]) -> None:
    for fn in program.functions.values():
        sites = [s for s in fn.dispatches if not s.blocking]
        if len(sites) < 2:
            continue
        seen: Dict[str, _DispatchSite] = {}
        flagged: Set[str] = set()
        for site in sites:
            for dotted, pos in zip(site.captured, site.captured_pos):
                if dotted not in seen:
                    seen[dotted] = site
                    continue
                if seen[dotted] is site or dotted in flagged:
                    continue
                if _task_writes_param(program, site, dotted, pos) or (
                    _task_writes_param(
                        program,
                        seen[dotted],
                        dotted,
                        _position_in(seen[dotted], dotted),
                    )
                ):
                    flagged.add(dotted)
                    _emit(
                        findings,
                        "REP103",
                        fn.module,
                        site.line,
                        site.node.col_offset,
                        f"buffer {dotted!r} is captured by concurrent dispatch "
                        f"sites at lines {seen[dotted].line} and {site.line} "
                        "and the task writes it (out=/mutation); the tasks may "
                        "alias the buffer — give each task a private buffer",
                    )


def _position_in(site: _DispatchSite, dotted: str) -> Optional[int]:
    for captured, pos in zip(site.captured, site.captured_pos):
        if captured == dotted:
            return pos
    return None


def _task_writes_param(
    program: FlowProgram,
    site: _DispatchSite,
    dotted: str,
    pos: Optional[int],
) -> bool:
    """Does the dispatched task write the captured argument at ``pos``?"""
    if pos is None:
        return False
    for entry in site.entries:
        callee = program.functions.get(entry)
        if callee is None:
            continue
        # pos 0 is the bound receiver (maps to self); pos k >= 1 maps to
        # the k-th parameter after any bound receiver.
        bound = (
            site.callable_expr is not None
            and isinstance(site.callable_expr, ast.Attribute)
        )
        pindex = pos if bound else pos - 1
        if 0 <= pindex < len(callee.params):
            param = callee.params[pindex]
            if param in callee.mutated_params or param in callee.out_params:
                return True
    return False


def _check_rep104(program: FlowProgram, findings: List[Finding]) -> None:
    for fn in program.functions.values():
        for message, line, col in fn.reductions:
            _emit(findings, "REP104", fn.module, line, col, message)


def _check_rep105(program: FlowProgram, findings: List[Finding]) -> None:
    for fn in program.functions.values():
        for site in fn.dispatches:
            if site.blocking:
                continue
            reported: Set[Tuple[int, str]] = set()
            for mutation in fn.mutations:
                if not (site.line < mutation.line < site.window_end):
                    continue
                for captured in site.captured:
                    if not _aliases(mutation.target, captured):
                        continue
                    key = (mutation.line, captured)
                    if key in reported:
                        continue
                    reported.add(key)
                    via = f" (via {mutation.via}())" if mutation.via else ""
                    _emit(
                        findings,
                        "REP105",
                        fn.module,
                        mutation.line,
                        mutation.col,
                        f"{mutation.target!r} is mutated{via} while the task "
                        f"submitted at line {site.line} may still hold "
                        f"{captured!r}; mutate after the join or pass a copy",
                    )
                    break


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def analyze_program(program: FlowProgram) -> List[Finding]:
    """Evaluate REP101-REP105 over a built program (waivers not applied)."""
    findings: List[Finding] = []
    _check_rep101(program, findings)
    _check_rep102(program, findings)
    _check_rep103(program, findings)
    _check_rep104(program, findings)
    _check_rep105(program, findings)
    return findings


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
    select: Sequence[str] = (),
) -> List[Finding]:
    """Run the whole-program flow pass; returns unsuppressed findings.

    ``select`` restricts the reported rules (empty = all of REP101-105);
    inline ``# repro: allow[REPxxx]`` waivers are honoured exactly as in
    the file-local pass.
    """
    program = build_program(paths, root=root)
    lines_by_path = {
        module.path: module.lines for module in program.modules.values()
    }
    findings: List[Finding] = []
    for finding in analyze_program(program):
        if select and finding.rule not in select:
            continue
        lines = lines_by_path.get(finding.path, [])
        if finding.rule in _suppressed_rules(lines, finding.line):
            continue
        text = lines[finding.line - 1].strip() if finding.line <= len(lines) else ""
        findings.append(
            Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                source_line=text,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
