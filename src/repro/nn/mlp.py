"""Multi-layer perceptron composed of Dense + activation layers."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Type

import numpy as np

from repro.nn.layers import Activation, Dense, Identity, ReLU, Tanh

__all__ = ["MLP"]

_ACTIVATIONS = {"tanh": Tanh, "relu": ReLU, "identity": Identity}


class MLP:
    """Feed-forward network: hidden Dense+activation stacks, linear output.

    Matches the paper's architecture when constructed with
    ``hidden=(256, 256), activation="tanh"``.

    Args:
        in_dim: Input feature dimension.
        hidden: Sizes of the hidden layers.
        out_dim: Output dimension (number of actions for the actor, 1 for
            the critic).
        activation: ``"tanh"`` (paper default), ``"relu"``, or
            ``"identity"``.
        out_gain: Initialisation gain of the output layer; a small value
            (0.01) keeps an actor's initial policy near-uniform.
        rng: Numpy generator or seed for weight initialisation.
    """

    def __init__(
        self,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        activation: str = "tanh",
        out_gain: float = 0.01,
        rng=None,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        rng = np.random.default_rng(rng)
        act_cls: Type[Activation] = _ACTIVATIONS[activation]
        self.dense_layers: List[Dense] = []
        self.activations: List[Activation] = []
        prev = in_dim
        for width in hidden:
            self.dense_layers.append(Dense(prev, width, gain=np.sqrt(2.0), rng=rng))
            self.activations.append(act_cls())
            prev = width
        self.dense_layers.append(Dense(prev, out_dim, gain=out_gain, rng=rng))
        self.activations.append(Identity())
        self.in_dim = in_dim
        self.out_dim = out_dim

    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass for a batch ``(N, in_dim) -> (N, out_dim)``."""
        out = np.asarray(x, dtype=np.float64)
        if out.ndim == 1:
            out = out[None, :]
        for dense, act in zip(self.dense_layers, self.activations):
            out = act.forward(dense.forward(out))
        return out

    __call__ = forward

    def backward(self, dout: np.ndarray, accumulate: bool = False) -> np.ndarray:
        """Backprop ``dL/d(output)``; fills each layer's ``grad``; returns dL/dx."""
        grad = dout
        for dense, act in zip(reversed(self.dense_layers), reversed(self.activations)):
            grad = dense.backward(act.backward(grad), accumulate=accumulate)
        return grad

    def zero_grad(self) -> None:
        for dense in self.dense_layers:
            dense.zero_grad()

    # ------------------------------------------------------------------

    @property
    def parameters(self) -> List[np.ndarray]:
        """Live references to all weight matrices (optimisers mutate these)."""
        return [d.weight for d in self.dense_layers]

    @property
    def gradients(self) -> List[np.ndarray]:
        return [d.grad for d in self.dense_layers]

    def num_parameters(self) -> int:
        return sum(w.size for w in self.parameters)

    def set_parameters(self, params: Sequence[np.ndarray]) -> None:
        """Overwrite all weights (shape-checked) — used to copy the trained
        network to every node's agent for distributed inference."""
        if len(params) != len(self.dense_layers):
            raise ValueError(
                f"expected {len(self.dense_layers)} parameter arrays, got {len(params)}"
            )
        for dense, new in zip(self.dense_layers, params):
            if new.shape != dense.weight.shape:
                raise ValueError(
                    f"parameter shape mismatch: {new.shape} vs {dense.weight.shape}"
                )
            dense.weight = new.copy()

    def copy_parameters(self) -> List[np.ndarray]:
        return [w.copy() for w in self.parameters]

    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Serialise weights to an ``.npz`` file."""
        arrays = {f"w{i}": w for i, w in enumerate(self.parameters)}
        np.savez(Path(path), **arrays)

    def load(self, path) -> None:
        """Load weights saved by :meth:`save` into this (same-shape) MLP."""
        data = np.load(Path(path))
        self.set_parameters([data[f"w{i}"] for i in range(len(self.dense_layers))])
