"""Multi-layer perceptron composed of Dense + activation layers."""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.nn.init import RNGLike
from repro.nn.layers import Activation, Dense, Identity, ReLU, Tanh

__all__ = ["MLP", "MLPInference", "fused_backward_is_exact"]

_ACTIVATIONS = {"tanh": Tanh, "relu": ReLU, "identity": Identity}


class MLP:
    """Feed-forward network: hidden Dense+activation stacks, linear output.

    Matches the paper's architecture when constructed with
    ``hidden=(256, 256), activation="tanh"``.

    Args:
        in_dim: Input feature dimension.
        hidden: Sizes of the hidden layers.
        out_dim: Output dimension (number of actions for the actor, 1 for
            the critic).
        activation: ``"tanh"`` (paper default), ``"relu"``, or
            ``"identity"``.
        out_gain: Initialisation gain of the output layer; a small value
            (0.01) keeps an actor's initial policy near-uniform.
        rng: Numpy generator or seed for weight initialisation.
    """

    def __init__(
        self,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        activation: str = "tanh",
        out_gain: float = 0.01,
        rng: RNGLike = None,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        rng = np.random.default_rng(rng)
        act_cls: Type[Activation] = _ACTIVATIONS[activation]
        self.dense_layers: List[Dense] = []
        self.activations: List[Activation] = []
        prev = in_dim
        for width in hidden:
            self.dense_layers.append(Dense(prev, width, gain=np.sqrt(2.0), rng=rng))
            self.activations.append(act_cls())
            prev = width
        self.dense_layers.append(Dense(prev, out_dim, gain=out_gain, rng=rng))
        self.activations.append(Identity())
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.hidden = tuple(hidden)
        # Reusable (2B, out) stacking buffer for backward_pair, keyed by
        # shape (the training loop calls it with one fixed batch size).
        self._pair_buffers: Dict[Tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass for a batch ``(N, in_dim) -> (N, out_dim)``."""
        out = np.asarray(x, dtype=np.float64)
        if out.ndim == 1:
            out = out[None, :]
        for dense, act in zip(self.dense_layers, self.activations):
            out = act.forward(dense.forward(out))
        return out

    __call__ = forward

    def backward(self, dout: np.ndarray, accumulate: bool = False) -> np.ndarray:
        """Backprop ``dL/d(output)``; fills each layer's ``grad``; returns dL/dx."""
        grad = dout
        for dense, act in zip(reversed(self.dense_layers), reversed(self.activations)):
            grad = dense.backward(act.backward(grad), accumulate=accumulate)
        return grad

    def backward_pair(
        self, fisher_dout: np.ndarray, loss_dout: np.ndarray
    ) -> np.ndarray:
        """Fused dual backward: one delta chain for two output-gradient sets.

        The K-FAC training step needs two backward passes through the
        *same* cached activations — one with sampled-Fisher output
        gradients (to populate ``last_output_grad`` for
        ``KFAC.update_stats``) and one with the loss gradients (to fill
        each layer's ``grad``).  This method stacks both sets into a
        ``(2B, out)`` block and propagates them together, halving the
        delta-propagation GEMMs and computing each activation derivative
        once instead of twice; the per-layer grad/stat GEMMs stay
        separate (see :meth:`Dense.backward_pair`), so every float the
        optimiser consumes is produced by the same operation sequence.

        Bit-identity with two serial :meth:`backward` calls depends on
        the BLAS treating a ``(2B, k) @ (k, m)`` GEMM as a row-block
        extension of ``(B, k) @ (k, m)`` (K-accumulation order
        independent of M) — true for the bundled OpenBLAS but gated at
        runtime by :func:`fused_backward_is_exact`, never assumed.

        Returns the stacked ``(2B, in_dim)`` input gradients.
        """
        batch = fisher_dout.shape[0]
        if loss_dout.shape != fisher_dout.shape:
            raise ValueError(
                "backward_pair needs equally shaped gradient sets, got "
                f"{fisher_dout.shape} vs {loss_dout.shape}"
            )
        key = (2 * batch, self.out_dim)
        pair = self._pair_buffers.get(key)
        if pair is None:
            pair = self._pair_buffers[key] = np.empty(key, dtype=np.float64)
        pair[:batch] = fisher_dout
        pair[batch:] = loss_dout
        grad = pair
        for dense, act in zip(reversed(self.dense_layers), reversed(self.activations)):
            # The activation derivative depends only on the cached (B, h)
            # forward output; a (2, B, h) view broadcasts it over both
            # gradient sets in one elementwise pass.
            width = grad.shape[1]
            grad = act.backward(grad.reshape(2, batch, width)).reshape(
                2 * batch, width
            )
            grad = dense.backward_pair(grad)
        return grad

    def zero_grad(self) -> None:
        for dense in self.dense_layers:
            dense.zero_grad()

    # ------------------------------------------------------------------

    @property
    def parameters(self) -> List[np.ndarray]:
        """Live references to all weight matrices (optimisers mutate these)."""
        return [d.weight for d in self.dense_layers]

    @property
    def gradients(self) -> List[np.ndarray]:
        return [d.grad for d in self.dense_layers]

    def num_parameters(self) -> int:
        return sum(w.size for w in self.parameters)

    def set_parameters(self, params: Sequence[np.ndarray]) -> None:
        """Overwrite all weights (shape-checked) — used to copy the trained
        network to every node's agent for distributed inference."""
        if len(params) != len(self.dense_layers):
            raise ValueError(
                f"expected {len(self.dense_layers)} parameter arrays, got {len(params)}"
            )
        for dense, new in zip(self.dense_layers, params):
            if new.shape != dense.weight.shape:
                raise ValueError(
                    f"parameter shape mismatch: {new.shape} vs {dense.weight.shape}"
                )
            dense.weight = new.copy()

    def copy_parameters(self) -> List[np.ndarray]:
        return [w.copy() for w in self.parameters]

    # ------------------------------------------------------------------

    def save(self, path: "Union[str, Path]") -> None:
        """Serialise weights to an ``.npz`` file."""
        arrays = {f"w{i}": w for i, w in enumerate(self.parameters)}
        np.savez(Path(path), **arrays)

    def load(self, path: "Union[str, Path]") -> None:
        """Load weights saved by :meth:`save` into this (same-shape) MLP."""
        data = np.load(Path(path))
        self.set_parameters([data[f"w{i}"] for i in range(len(self.dense_layers))])


#: Cache of probe results keyed by (in_dim, hidden, out_dim, batch,
#: activation) — the probe builds scratch networks and runs real GEMMs,
#: so each architecture/batch combination is checked once per process.
_FUSED_EXACTNESS_CACHE: Dict[Tuple[Any, ...], bool] = {}


def fused_backward_is_exact(
    in_dim: int,
    hidden: Sequence[int],
    out_dim: int,
    batch: int,
    activation: str = "tanh",
) -> bool:
    """Probe whether :meth:`MLP.backward_pair` is bitwise-identical to two
    serial :meth:`MLP.backward` calls for this architecture and batch size.

    The fusion's only numerical assumption is that the BLAS computes a
    ``(2B, k) @ (k, m)`` GEMM row-block-compatibly with ``(B, k) @ (k, m)``
    (K-accumulation order independent of M).  That holds for the bundled
    OpenBLAS kernels on every probed shape, but it is a property of the
    BLAS build and thread count, not of the algorithm — so the trainer
    asks this probe at construction time with its *real* shapes instead of
    assuming, and falls back to the serial two-pass path when the answer
    is no (mirroring how the float32 eval path is gated).

    The probe is deterministic (fixed local generator, no global rng
    consumed) and compares, layer by layer, the three arrays the
    optimiser consumes: ``grad``, ``last_output_grad``, and the
    propagated input gradients.
    """
    key = (in_dim, tuple(hidden), out_dim, batch, activation)
    cached = _FUSED_EXACTNESS_CACHE.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(0)
    ref = MLP(in_dim, hidden, out_dim, activation=activation, rng=0)
    fused = MLP(in_dim, hidden, out_dim, activation=activation, rng=0)
    x = rng.standard_normal((batch, in_dim))
    fisher_dout = rng.standard_normal((batch, out_dim))
    loss_dout = rng.standard_normal((batch, out_dim))
    ref.forward(x)
    fused.forward(x)
    # Reference: Fisher backward (caches last_output_grad), then loss
    # backward — the exact sequence ACKTR runs on the serial path.
    ref.backward(fisher_dout)
    ref_stats = [d.last_output_grad.copy() for d in ref.dense_layers]  # type: ignore[union-attr]
    ref_dx = ref.backward(loss_dout)
    ref_grads = [d.grad.copy() for d in ref.dense_layers]
    fused_dx = fused.backward_pair(fisher_dout, loss_dout)
    exact = all(
        np.array_equal(fd.grad, rg)
        and np.array_equal(fd.last_output_grad, rs)  # type: ignore[arg-type]
        for fd, rg, rs in zip(fused.dense_layers, ref_grads, ref_stats)
    ) and np.array_equal(fused_dx[batch:], ref_dx)
    _FUSED_EXACTNESS_CACHE[key] = exact
    return exact


class MLPInference:
    """Allocation-free batched forward passes over an :class:`MLP`.

    The training :meth:`MLP.forward` allocates a bias-augmented copy and a
    fresh output per layer — the right thing for backprop, pure overhead
    for inference where a batch-1 forward is dominated by allocator and
    ufunc-dispatch time.  This wrapper keeps one workspace pair per layer
    (bias-augmented input, pre-activation output), sized to the largest
    batch seen so far; a request for ``n`` rows runs on contiguous prefix
    views ``buf[:n]``, so lockstep evaluation rounds with a shrinking
    batch never reallocate.  Activations run in place and training caches
    (``last_input_aug``, Tanh outputs) are never touched, so an instance
    can be used between a training forward and its backward.

    dtype:
        ``np.float64`` (default) computes exactly what ``MLP.forward``
        computes for the same batch — same ufuncs, same GEMM — and reads
        the live weight references, so it tracks in-place optimiser
        updates (call :meth:`refresh_weights` only if layers' ``weight``
        arrays were *rebound*, e.g. via ``set_parameters``).
        ``np.float32`` casts the weights once and runs the whole forward
        in single precision — roughly 2x less memory traffic, at ~1e-6
        relative error per layer (empirically <1e-4 relative on the
        logits of the paper's 2x256 tanh network).  Use it only where bit
        equality with the float64 path is not required; the batched
        evaluation engine disables its exactness guarantee in this mode.
    """

    def __init__(self, mlp: MLP, dtype: Any = np.float64) -> None:
        self.mlp = mlp
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"MLPInference supports float64/float32, got {dtype}")
        self._weights: Optional[List[np.ndarray]] = None
        self.refresh_weights()
        self._capacity = 0
        self._aug: List[np.ndarray] = []
        self._out: List[np.ndarray] = []

    def refresh_weights(self) -> None:
        """Re-snapshot weights (float32 mode casts; float64 mode just
        re-reads the live references)."""
        if self.dtype == np.dtype(np.float64):
            self._weights = None  # read d.weight live on every forward
        else:
            self._weights = [
                d.weight.astype(self.dtype) for d in self.mlp.dense_layers
            ]

    def _ensure_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        self._aug = []
        self._out = []
        for dense in self.mlp.dense_layers:
            aug = np.empty((n, dense.in_dim + 1), dtype=self.dtype)
            aug[:, -1] = 1.0  # bias column, set once
            self._aug.append(aug)
            self._out.append(np.empty((n, dense.out_dim), dtype=self.dtype))
        self._capacity = n

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``(n, in_dim) -> (n, out_dim)`` into a reused workspace.

        The returned array is a view of an internal buffer: it is valid
        until the next :meth:`forward` call and must not be kept or
        mutated by the caller.
        """
        n = x.shape[0]
        self._ensure_capacity(n)
        src: np.ndarray = x
        out: np.ndarray = x
        for i, (dense, act) in enumerate(
            zip(self.mlp.dense_layers, self.mlp.activations)
        ):
            aug = self._aug[i][:n]
            out = self._out[i][:n]
            aug[:, :-1] = src  # casts on assignment in float32 mode
            dense.forward_into(
                aug, out, weight=None if self._weights is None else self._weights[i]
            )
            out = act.forward_inplace(out)
            src = out
        return out
