"""Categorical action distribution over policy logits.

Provides the pieces an actor-critic trainer needs with hand-derived
gradients: sampling, log-probabilities, entropy, and the analytic gradients
of the policy-gradient and entropy objectives w.r.t. the logits.
"""

from __future__ import annotations


import numpy as np

__all__ = ["softmax", "log_softmax", "Categorical"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class Categorical:
    """Batch of categorical distributions parameterised by logits (N, K).

    ``probs`` and ``log_probs`` are computed lazily and cached: the
    action-selection hot path (Gumbel-max sampling + log_prob of the
    chosen actions) never touches ``probs``, so each act() call skips one
    full softmax.
    """

    __slots__ = ("logits", "_probs", "_log_probs")

    def __init__(self, logits: np.ndarray) -> None:
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (batch, actions), got {logits.shape}")
        self.logits = logits
        self._probs: "np.ndarray | None" = None
        self._log_probs: "np.ndarray | None" = None

    @property
    def probs(self) -> np.ndarray:
        probs = self._probs
        if probs is None:
            probs = self._probs = softmax(self.logits)
        return probs

    @property
    def log_probs(self) -> np.ndarray:
        log_probs = self._log_probs
        if log_probs is None:
            log_probs = self._log_probs = log_softmax(self.logits)
        return log_probs

    @property
    def num_actions(self) -> int:
        return self.logits.shape[1]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one action per batch row via the Gumbel-max trick.

        Gumbel-max avoids per-row cumulative-sum searches and is exactly
        equivalent to categorical sampling.
        """
        gumbel = -np.log(-np.log(rng.uniform(1e-12, 1.0, size=self.logits.shape)))
        return np.argmax(self.logits + gumbel, axis=-1)

    def mode(self) -> np.ndarray:
        """Greedy (argmax) action per row — used at inference time when a
        deterministic policy is desired."""
        return np.argmax(self.logits, axis=-1)

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        """``log π(a|o)`` per batch row."""
        rows = np.arange(self.logits.shape[0])
        return self.log_probs[rows, actions]

    def entropy(self) -> np.ndarray:
        """Shannon entropy per row."""
        return -(self.probs * self.log_probs).sum(axis=-1)

    def kl_divergence(self, other: "Categorical") -> np.ndarray:
        """``KL(self || other)`` per row (used for the ACKTR trust region)."""
        return (self.probs * (self.log_probs - other.log_probs)).sum(axis=-1)

    # ------------------------------------------------------------------
    # Analytic gradients (all w.r.t. the logits, per batch row)
    # ------------------------------------------------------------------

    def grad_log_prob(self, actions: np.ndarray) -> np.ndarray:
        """``d log π(a|o) / d logits = onehot(a) - π``."""
        grad = -self.probs.copy()
        rows = np.arange(self.logits.shape[0])
        grad[rows, actions] += 1.0
        return grad

    def grad_entropy(self) -> np.ndarray:
        """``dH/dlogits`` per row.

        With ``H = -Σ π log π`` and logits ``z``:
        ``dH/dz_k = -π_k (log π_k + H)`` ... derived via the softmax
        Jacobian; equivalently ``-π ⊙ (log π - Σ π log π)``.
        """
        expected_logp = (self.probs * self.log_probs).sum(axis=-1, keepdims=True)
        return -self.probs * (self.log_probs - expected_logp)

    def fisher_sample_grad(self, rng: np.random.Generator) -> np.ndarray:
        """Per-row sampled gradient ``π - onehot(â)`` with ``â ~ π``.

        These are the output-layer gradients whose second moments K-FAC
        accumulates to estimate the *true* Fisher information (sampling
        actions from the model's own distribution, not the behaviour data).
        """
        sampled = self.sample(rng)
        grad = self.probs.copy()
        rows = np.arange(self.logits.shape[0])
        grad[rows, sampled] -= 1.0
        return grad
