"""Weight initialisation schemes for the numpy neural-network stack."""

from __future__ import annotations

import numpy as np

from typing import Optional, Tuple, Union

#: Anything ``np.random.default_rng`` accepts as a seed, or an existing
#: generator (``None`` draws fresh OS entropy — linted against in library
#: code by REP001).
RNGLike = Optional[Union[int, np.random.SeedSequence, np.random.Generator]]

__all__ = ["orthogonal", "xavier_uniform", "zeros"]


def orthogonal(
    shape: Tuple[int, int],
    gain: float = 1.0,
    rng: "RNGLike" = None,
) -> np.ndarray:
    """Orthogonal initialisation (Saxe et al.), the stable-baselines default.

    Args:
        shape: ``(fan_in, fan_out)``.
        gain: Scaling factor; ``sqrt(2)`` for ReLU stacks, smaller (e.g.
            0.01) for policy output layers to start near-uniform.
        rng: Numpy generator or seed.
    """
    if len(shape) != 2:
        raise ValueError(f"orthogonal init needs a 2-D shape, got {shape}")
    rng = np.random.default_rng(rng)
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Sign correction makes the distribution uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).astype(np.float64)


def xavier_uniform(
    shape: Tuple[int, int],
    gain: float = 1.0,
    rng: "RNGLike" = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for tanh networks."""
    if len(shape) != 2:
        raise ValueError(f"xavier init needs a 2-D shape, got {shape}")
    rng = np.random.default_rng(rng)
    fan_in, fan_out = shape
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros(shape: Union[int, Tuple[int, ...]]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
