"""Neural-network layers with explicit forward/backward passes.

The paper trains with TensorFlow; offline we implement the needed pieces —
dense layers and tanh activations — directly in numpy with hand-derived
gradients.  Layers keep the caches K-FAC needs: the (bias-augmented) layer
inputs ``ā`` and the gradients w.r.t. pre-activations ``g``, whose second
moments form the Kronecker factors ``A = E[ā āᵀ]`` and ``G = E[g gᵀ]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.init import RNGLike, orthogonal, xavier_uniform

__all__ = ["Dense", "Tanh", "ReLU", "Identity", "Activation"]


class Dense:
    """Fully connected layer ``z = ā W`` with the bias folded into ``W``.

    The input is augmented with a constant 1 column (``ā = [x, 1]``) and
    ``W`` has shape ``(in_dim + 1, out_dim)``; the last row is the bias.
    Folding the bias keeps K-FAC's Kronecker factorisation exact with a
    single factor pair per layer.

    Attributes:
        weight: Parameter matrix ``(in_dim + 1, out_dim)``.
        grad: Gradient of the loss w.r.t. ``weight`` after backward().
        last_input_aug: Cached ``ā`` from the last forward pass.
        last_output_grad: Cached ``g = dL/dz`` from the last backward pass.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        init: str = "orthogonal",
        gain: float = 1.0,
        rng: RNGLike = None,
    ) -> None:
        if in_dim < 1 or out_dim < 1:
            raise ValueError(f"invalid Dense dims ({in_dim}, {out_dim})")
        self.in_dim = in_dim
        self.out_dim = out_dim
        if init == "orthogonal":
            core = orthogonal((in_dim, out_dim), gain=gain, rng=rng)
        elif init == "xavier":
            core = xavier_uniform((in_dim, out_dim), gain=gain, rng=rng)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = np.vstack([core, np.zeros((1, out_dim))])
        self.grad = np.zeros_like(self.weight)
        self.last_input_aug: Optional[np.ndarray] = None
        self.last_output_grad: Optional[np.ndarray] = None
        # Reusable bias-augmented input buffers, keyed by batch size: the
        # training loop alternates between a small act batch and the large
        # update batch thousands of times, so forward() fills a cached
        # buffer instead of concatenating a fresh (N, in+1) array per call.
        # Consequence: ``last_input_aug`` holds the buffer, whose contents
        # are only valid until the next same-batch-size forward — which is
        # exactly the lifetime backward() and KFAC.update_stats() rely on.
        self._aug_buffers: dict = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``z = [x, 1] W`` for a batch ``x`` of shape (N, in_dim)."""
        if x.ndim != 2 or x.shape[1] != self.in_dim:
            raise ValueError(
                f"Dense({self.in_dim},{self.out_dim}): bad input shape {x.shape}"
            )
        n = x.shape[0]
        aug = self._aug_buffers.get(n)
        if aug is None:
            aug = np.empty((n, self.in_dim + 1), dtype=np.float64)
            aug[:, -1] = 1.0
            self._aug_buffers[n] = aug
        aug[:, :-1] = x
        self.last_input_aug = aug
        return aug @ self.weight

    def forward_into(
        self,
        aug: np.ndarray,
        out: np.ndarray,
        weight: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Inference-only forward ``out[:] = aug @ W`` with zero allocation.

        ``aug`` is the caller-maintained bias-augmented input (its last
        column must already be 1).  Unlike :meth:`forward` this neither
        allocates nor touches the training caches, so it is safe to run
        between a training forward and its backward.  ``weight`` lets a
        caller substitute a cast copy (float32 inference) for
        ``self.weight``.
        """
        np.matmul(aug, self.weight if weight is None else weight, out=out)
        return out

    def backward(self, dz: np.ndarray, accumulate: bool = False) -> np.ndarray:
        """Given ``dL/dz``, set ``self.grad`` and return ``dL/dx``.

        Gradients are averaged over the batch (dz is assumed to already be
        per-example loss gradients).
        """
        if self.last_input_aug is None:
            raise RuntimeError("Dense.backward() called before forward()")
        self.last_output_grad = dz
        grad = self.last_input_aug.T @ dz
        if accumulate:
            self.grad += grad
        else:
            self.grad = grad
        # Drop the bias row when propagating to the input.
        return dz @ self.weight[:-1].T

    def backward_pair(self, dz_pair: np.ndarray) -> np.ndarray:
        """Fused backward for two stacked output-gradient sets.

        ``dz_pair`` is ``(2B, out)``: rows ``[:B]`` the sampled-Fisher
        gradients, rows ``[B:]`` the loss gradients, both w.r.t. this
        layer's pre-activations for the *same* cached forward batch.
        Sets ``last_output_grad`` to the Fisher half (the array
        ``KFAC.update_stats`` consumes), ``grad`` from the loss half
        (two separate stat/grad GEMMs, identical to two
        :meth:`backward` calls), and propagates *both* delta chains
        through a single ``(2B, out) @ (out, in)`` GEMM — the fusion
        that halves the delta-propagation work.
        """
        if self.last_input_aug is None:
            raise RuntimeError("Dense.backward_pair() called before forward()")
        batch = self.last_input_aug.shape[0]
        if dz_pair.shape != (2 * batch, self.out_dim):
            raise ValueError(
                f"Dense({self.in_dim},{self.out_dim}): backward_pair needs a "
                f"(2*{batch}, {self.out_dim}) stacked gradient, got {dz_pair.shape}"
            )
        self.last_output_grad = dz_pair[:batch]
        self.grad = self.last_input_aug.T @ dz_pair[batch:]
        return dz_pair @ self.weight[:-1].T

    def zero_grad(self) -> None:
        self.grad = np.zeros_like(self.weight)


class Activation:
    """Base class for parameter-free elementwise activations."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward overwriting ``x``; no backward cache."""
        raise NotImplementedError


class Tanh(Activation):
    """tanh — the paper's hidden activation (2x256 tanh units)."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("Tanh.backward() called before forward()")
        return dout * (1.0 - self._out**2)

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x, out=x)


class ReLU(Activation):
    """ReLU, available for ablations."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("ReLU.backward() called before forward()")
        return dout * self._mask

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0, out=x)


class Identity(Activation):
    """No-op activation (for linear output heads)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        return x
