"""First-order optimisers over lists of parameter arrays.

The paper trains with RMSprop; SGD (with momentum) and Adam are included
for ablations and tests.  Optimisers mutate the parameter arrays in place
(the arrays are shared with the :class:`~repro.nn.mlp.MLP` layers).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Optimizer", "SGD", "RMSprop", "Adam", "clip_grads_by_norm"]


def clip_grads_by_norm(grads: Sequence[np.ndarray], max_norm: float) -> float:
    """Scale ``grads`` in place so the global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.  Matches the paper's "max. gradient 0.5".
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    total = float(np.sqrt(sum(float(np.sum(g**2)) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base optimiser over a fixed list of parameter arrays."""

    def __init__(self, params: Sequence[np.ndarray], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be > 0, got {lr}")
        self.params: List[np.ndarray] = list(params)
        self.lr = lr

    def step(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one update from ``grads`` (aligned with ``self.params``)."""
        if len(grads) != len(self.params):
            raise ValueError(
                f"got {len(grads)} gradients for {len(self.params)} parameters"
            )
        self._step(list(grads))

    def _step(self, grads: List[np.ndarray]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain / momentum SGD."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self.params]

    def _step(self, grads: List[np.ndarray]) -> None:
        for p, g, v in zip(self.params, grads, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += g
                p -= self.lr * v
            else:
                p -= self.lr * g


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton) — the paper's optimiser."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 0.25,
        decay: float = 0.99,
        epsilon: float = 1e-5,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self.decay = decay
        self.epsilon = epsilon
        self._mean_square = [np.zeros_like(p) for p in self.params]

    def _step(self, grads: List[np.ndarray]) -> None:
        for p, g, ms in zip(self.params, grads, self._mean_square):
            ms *= self.decay
            ms += (1.0 - self.decay) * g**2
            p -= self.lr * g / (np.sqrt(ms) + self.epsilon)


class Adam(Optimizer):
    """Adam (Kingma & Ba)."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def _step(self, grads: List[np.ndarray]) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.epsilon)
