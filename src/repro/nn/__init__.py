"""Pure-numpy neural-network stack: layers, MLPs, optimisers, K-FAC."""

from repro.nn.distributions import Categorical, log_softmax, softmax
from repro.nn.init import orthogonal, xavier_uniform, zeros
from repro.nn.kfac import KFAC
from repro.nn.layers import Activation, Dense, Identity, ReLU, Tanh
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam, Optimizer, RMSprop, clip_grads_by_norm

__all__ = [
    "Categorical",
    "log_softmax",
    "softmax",
    "orthogonal",
    "xavier_uniform",
    "zeros",
    "KFAC",
    "Activation",
    "Dense",
    "Identity",
    "ReLU",
    "Tanh",
    "MLP",
    "SGD",
    "Adam",
    "Optimizer",
    "RMSprop",
    "clip_grads_by_norm",
]
