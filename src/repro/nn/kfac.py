"""K-FAC: Kronecker-factored approximate curvature (Martens & Grosse).

ACKTR [38] trains actor and critic with natural-gradient updates whose
Fisher information matrix is approximated block-diagonally per layer, each
block as a Kronecker product of two small factors:

    F_layer ≈ A ⊗ G,   A = E[ā āᵀ],   G = E[g gᵀ]

where ``ā`` is the layer's bias-augmented input and ``g`` the gradient of
the *model's own* log-likelihood (actions sampled from the policy itself,
targets sampled from the value model) w.r.t. the layer's pre-activations.
The natural gradient is then cheap:

    (A ⊗ G)⁻¹ vec(∇W)  =  vec(A⁻¹ ∇W G⁻¹)

On top, ACKTR applies a trust region: the raw step is rescaled so the
predicted KL change ``½ Δθᵀ F Δθ`` stays below ``kl_clip``.

Usage inside a trainer::

    model.forward(obs)                      # caches ā per layer
    model.backward(fisher_output_grad)      # caches g per layer
    kfac.update_stats()                     # EMA of A, G from the caches
    model.forward(obs); model.backward(dl)  # true loss gradients
    kfac.step([d.grad for d in model.dense_layers])
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.invariants import InvariantViolation
from repro.nn.mlp import MLP
from repro.nn.optim import clip_grads_by_norm

__all__ = ["KFAC"]


class KFAC:
    """Kronecker-factored natural-gradient optimiser for one MLP.

    Args:
        model: The network to optimise (parameters updated in place).
        lr: Maximum learning rate η_max (paper: 0.25 initial).
        kl_clip: Trust-region bound on the predicted KL per update
            (paper: 0.001).
        damping: Tikhonov damping λ added to the factors before inversion.
        stat_decay: EMA decay for the running Kronecker factors.
        inversion_interval: Recompute the factor inverses every this many
            steps (inversion is the expensive part of K-FAC).
        max_grad_norm: Optional global gradient-norm clip applied to the
            incoming raw gradients (paper: 0.5).
    """

    def __init__(
        self,
        model: MLP,
        lr: float = 0.25,
        kl_clip: float = 0.001,
        damping: float = 0.01,
        stat_decay: float = 0.95,
        inversion_interval: int = 10,
        max_grad_norm: Optional[float] = 0.5,
    ) -> None:
        if lr <= 0 or kl_clip <= 0 or damping <= 0:
            raise ValueError("lr, kl_clip, and damping must all be > 0")
        if not 0.0 < stat_decay < 1.0:
            raise ValueError(f"stat_decay must be in (0, 1), got {stat_decay}")
        self.model = model
        self.lr = lr
        self.kl_clip = kl_clip
        self.damping = damping
        self.stat_decay = stat_decay
        self.inversion_interval = max(1, inversion_interval)
        self.max_grad_norm = max_grad_norm

        layers = model.dense_layers
        self._A: List[np.ndarray] = [np.eye(d.weight.shape[0]) for d in layers]
        self._G: List[np.ndarray] = [np.eye(d.weight.shape[1]) for d in layers]
        self._A_inv: List[Optional[np.ndarray]] = [None] * len(layers)
        self._G_inv: List[Optional[np.ndarray]] = [None] * len(layers)
        # Hot-loop scratch, allocated once: the damping identities reused
        # by every _refresh_inverses, per-layer buffers for the new factor
        # statistics, and gradient copies for step()'s in-place clipping.
        self._eye_A: List[np.ndarray] = [np.eye(d.weight.shape[0]) for d in layers]
        self._eye_G: List[np.ndarray] = [np.eye(d.weight.shape[1]) for d in layers]
        self._A_new: List[np.ndarray] = [np.empty_like(a) for a in self._A]
        self._G_new: List[np.ndarray] = [np.empty_like(g) for g in self._G]
        self._grad_scratch: List[np.ndarray] = [
            np.empty_like(d.weight) for d in layers
        ]
        # step() works through three weight-shaped buffers per layer
        # (natural gradient, GEMM-chain temporary, trust-region product)
        # so the per-update preconditioning allocates nothing; out=
        # matmul/multiply produce bitwise-identical floats to the
        # allocating expressions they replace.
        self._u_buf: List[np.ndarray] = [np.empty_like(d.weight) for d in layers]
        self._t_buf: List[np.ndarray] = [np.empty_like(d.weight) for d in layers]
        self._q_buf: List[np.ndarray] = [np.empty_like(d.weight) for d in layers]
        self._steps = 0
        self._stat_updates = 0
        #: Trust-region rescale of the most recent :meth:`step` (1.0 when
        #: the raw natural-gradient step already satisfied the KL bound).
        self.last_scale: float = 1.0
        #: Predicted KL ``½ Δθᵀ F Δθ`` of the most recently *applied*
        #: (rescaled) step; ≤ ``kl_clip`` by construction.
        self.last_predicted_kl: float = 0.0
        #: Global gradient norm *before* clipping of the most recent
        #: :meth:`step` (0.0 until the first step, or when clipping is
        #: disabled) — surfaced as ``grad_norm`` in training telemetry.
        self.last_grad_norm: float = 0.0
        #: When True, :meth:`step` records wall-clock attribution of its
        #: two sub-phases into ``last_inversion_seconds`` /
        #: ``last_precondition_seconds`` (read by the trainer's phase
        #: profiler; two clock reads per step when enabled, zero cost
        #: otherwise).
        self.profile: bool = False
        self.last_inversion_seconds: float = 0.0
        self.last_precondition_seconds: float = 0.0

    # ------------------------------------------------------------------

    def update_stats(self) -> None:
        """Fold the layers' current caches into the running A and G factors.

        Must be called right after a forward pass and a backward pass with
        the *sampled-Fisher* output gradient (see module docstring); uses
        ``last_input_aug`` and ``last_output_grad`` of each Dense layer.
        """
        self._stat_updates += 1
        decay = self.stat_decay
        for i, dense in enumerate(self.model.dense_layers):
            aug = dense.last_input_aug
            g = dense.last_output_grad
            if aug is None or g is None:
                raise RuntimeError(
                    "update_stats() requires a forward and a (Fisher) backward "
                    "pass beforehand"
                )
            batch = aug.shape[0]
            # In-place EMA into the running factors; elementwise identical
            # to ``decay * A + (1 - decay) * (aug.T @ aug / batch)`` but
            # without allocating fresh factor-sized arrays per update.
            a_new = np.matmul(aug.T, aug, out=self._A_new[i])
            a_new /= batch
            g_new = np.matmul(g.T, g, out=self._G_new[i])
            g_new /= batch
            self._A[i] *= decay
            a_new *= 1.0 - decay
            self._A[i] += a_new
            self._G[i] *= decay
            g_new *= 1.0 - decay
            self._G[i] += g_new

    def _refresh_inverses(self) -> None:
        for i, (a, g) in enumerate(zip(self._A, self._G)):
            # Factored Tikhonov damping (Martens & Grosse Sec. 6.3): split
            # the damping between the factors in proportion to their scales.
            tr_a = max(np.trace(a) / a.shape[0], 1e-12)
            tr_g = max(np.trace(g) / g.shape[0], 1e-12)
            pi = np.sqrt(tr_a / tr_g)
            eps_a = np.sqrt(self.damping) * pi
            eps_g = np.sqrt(self.damping) / pi
            self._A_inv[i] = np.linalg.inv(a + eps_a * self._eye_A[i])
            self._G_inv[i] = np.linalg.inv(g + eps_g * self._eye_G[i])

    # ------------------------------------------------------------------

    def step(self, grads: Sequence[np.ndarray]) -> float:
        """Apply one natural-gradient update; returns the trust-region scale.

        Args:
            grads: Loss gradients aligned with ``model.dense_layers``.
        """
        if len(grads) != len(self.model.dense_layers):
            raise ValueError(
                f"got {len(grads)} gradients for {len(self.model.dense_layers)} layers"
            )
        # Copy into the preallocated scratch so the in-place norm clip
        # below cannot mutate the caller's arrays.
        for buf, g in zip(self._grad_scratch, grads):
            np.copyto(buf, g)
        grads = self._grad_scratch
        if self.max_grad_norm is not None:
            self.last_grad_norm = clip_grads_by_norm(grads, self.max_grad_norm)

        profile = self.profile
        t0 = t1 = time.perf_counter() if profile else 0.0
        if self._steps % self.inversion_interval == 0:
            self._refresh_inverses()
        self._steps += 1
        if profile:
            t1 = time.perf_counter()
            self.last_inversion_seconds = t1 - t0

        # Preconditioned (natural) gradients per layer, written into the
        # preallocated ``_u_buf`` scratch (``A⁻¹ ∇W G⁻¹`` via two out=
        # GEMMs — bitwise identical to the chained ``@`` expression).
        updates = self._u_buf
        for layer_index, (grad, a_inv, g_inv) in enumerate(
            zip(grads, self._A_inv, self._G_inv)
        ):
            if a_inv is None or g_inv is None:
                raise InvariantViolation(
                    "K-FAC factor inverses missing at step time "
                    "(refresh interval logic broke)",
                    layer=layer_index, steps=self._steps,
                )
            np.matmul(a_inv, grad, out=self._t_buf[layer_index])
            np.matmul(self._t_buf[layer_index], g_inv, out=updates[layer_index])

        # Trust region: predicted KL ≈ ½ η² Σ tr(uᵀ A u G); rescale so the
        # actual step's predicted KL stays below kl_clip.
        quad = 0.0
        for u, a, g, tmp, prod in zip(
            updates, self._A, self._G, self._t_buf, self._q_buf
        ):
            np.matmul(a, u, out=tmp)
            np.matmul(tmp, g, out=prod)
            np.multiply(u, prod, out=tmp)
            quad += float(np.sum(tmp))
        quad = max(quad, 1e-12)
        scale = min(1.0, np.sqrt(2.0 * self.kl_clip / (self.lr**2 * quad)))
        self.last_scale = float(scale)
        self.last_predicted_kl = float(0.5 * (self.lr * scale) ** 2 * quad)

        step_size = self.lr * scale
        for weight, update, tmp in zip(self.model.parameters, updates, self._t_buf):
            np.multiply(update, step_size, out=tmp)
            weight -= tmp
        if profile:
            self.last_precondition_seconds = time.perf_counter() - t1
        return float(scale)
