"""The paper's contribution: distributed DRL service coordination."""

from repro.core.actions import ACTION_PROCESS_LOCALLY, ActionAdapter
from repro.core.agent import DistributedCoordinator, NodeAgent
from repro.core.env import CoordinationEnvConfig, ServiceCoordinationEnv
from repro.core.observations import ObservationAdapter, ObservationParts
from repro.core.rewards import RewardConfig, RewardFunction
from repro.core.trainer import TrainingConfig, TrainingResult, train_coordinator

__all__ = [
    "ACTION_PROCESS_LOCALLY",
    "ActionAdapter",
    "DistributedCoordinator",
    "NodeAgent",
    "CoordinationEnvConfig",
    "ServiceCoordinationEnv",
    "ObservationAdapter",
    "ObservationParts",
    "RewardConfig",
    "RewardFunction",
    "TrainingConfig",
    "TrainingResult",
    "train_coordinator",
]
