"""Reward function with shaping (Sec. IV-B3).

The sparse objective signal is ±10 for completed/dropped flows.  Because a
randomly initialised policy almost never completes a flow, three *small*
shaped signals guide early training:

- ``+1/n_s`` whenever a flow traverses a component instance,
- ``-d_l/D_G`` whenever a flow is sent over link ``l``,
- ``-1/D_G`` whenever an already fully processed flow is kept at a node.

The shaping magnitudes must stay well below the terminal rewards or they
distort the learned behaviour (e.g. half-processing two flows must never
beat completing one); :meth:`RewardConfig.validate_shaping` checks this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.invariants import InvariantViolation
from repro.sim.simulator import Outcome, OutcomeKind
from repro.topology.network import Network

__all__ = ["RewardConfig", "RewardFunction"]


@dataclass(frozen=True)
class RewardConfig:
    """Reward magnitudes; paper defaults.

    Attributes:
        success_reward: Flow completed within its deadline (+10).
        drop_penalty: Flow dropped for any reason (-10).
        enable_shaping: Master switch for the three auxiliary signals —
            the reward-shaping ablation turns this off.
        instance_bonus_scale: Multiplier on the ``+1/n_s`` per-instance
            bonus.
        link_penalty_scale: Multiplier on the ``-d_l/D_G`` link penalty.
        keep_penalty_scale: Multiplier on the ``-1/D_G`` keep penalty.
    """

    success_reward: float = 10.0
    drop_penalty: float = -10.0
    enable_shaping: bool = True
    instance_bonus_scale: float = 1.0
    link_penalty_scale: float = 1.0
    keep_penalty_scale: float = 1.0

    def validate_shaping(self, min_chain_length: int = 1) -> None:
        """Raise when an auxiliary reward could rival the terminal rewards.

        The guard formalises the paper's warning: processing a whole chain
        of shaped bonuses (``n_s * (1/n_s) = 1``, scaled) must stay well
        below the +10 completion reward.
        """
        if not self.enable_shaping:
            return
        if self.instance_bonus_scale * 1.0 >= 0.5 * self.success_reward:
            raise ValueError(
                "instance bonus is too strong relative to the success reward; "
                "shaping must stay a weak signal (Sec. IV-B3)"
            )
        if self.link_penalty_scale >= 0.5 * abs(self.drop_penalty):
            raise ValueError(
                "link penalty is too strong relative to the drop penalty"
            )
        if self.keep_penalty_scale >= 0.5 * abs(self.drop_penalty):
            raise ValueError(
                "keep penalty is too strong relative to the drop penalty; "
                "shaping must stay a weak signal (Sec. IV-B3)"
            )


class RewardFunction:
    """Maps simulator outcomes to scalar rewards for one network.

    Args:
        network: Supplies the diameter ``D_G`` that normalises the link and
            keep penalties.
        config: Reward magnitudes.
    """

    def __init__(self, network: Network, config: RewardConfig = RewardConfig()) -> None:
        config.validate_shaping()
        self.config = config
        self.diameter = max(network.diameter, 1e-12)

    def outcome_reward(self, outcome: Outcome) -> float:
        """Reward contribution of a single semantic outcome."""
        cfg = self.config
        if outcome.kind is OutcomeKind.FLOW_SUCCESS:
            return cfg.success_reward
        if outcome.kind is OutcomeKind.FLOW_DROP:
            return cfg.drop_penalty
        if not cfg.enable_shaping:
            return 0.0
        if outcome.kind is OutcomeKind.INSTANCE_TRAVERSED:
            if outcome.chain_length is None:
                raise InvariantViolation(
                    "INSTANCE_TRAVERSED outcome lacks its chain length",
                    flow_id=outcome.flow_id,
                )
            return cfg.instance_bonus_scale / outcome.chain_length
        if outcome.kind is OutcomeKind.LINK_TRAVERSED:
            if outcome.link_delay is None:
                raise InvariantViolation(
                    "LINK_TRAVERSED outcome lacks its link delay",
                    flow_id=outcome.flow_id,
                )
            return -cfg.link_penalty_scale * outcome.link_delay / self.diameter
        if outcome.kind is OutcomeKind.FLOW_KEPT:
            return -cfg.keep_penalty_scale / self.diameter
        raise ValueError(f"unhandled outcome kind {outcome.kind}")  # pragma: no cover

    def total(self, outcomes: Iterable[Outcome]) -> float:
        """Summed reward of a batch of outcomes (one env step's worth)."""
        return sum(self.outcome_reward(o) for o in outcomes)
