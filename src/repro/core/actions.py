"""Action adapter: the shared discrete action space of Sec. IV-B2.

Every agent's action space is ``{0, 1, ..., Δ_G}``:

- ``a = 0`` — process the flow locally (implicitly scaling/placing an
  instance), or keep it one time step if it is already fully processed;
- ``a ∈ {1, ..., Δ_G}`` — forward the flow to the node's a-th neighbor
  (sorted order).  At nodes with fewer than Δ_G neighbors the surplus
  actions point at non-existing dummy neighbors: taking one drops the
  flow with a high penalty.

The *execution* of actions lives in the simulator
(:meth:`repro.sim.simulator.Simulator.apply_action`); this adapter supplies
the space description and validity helpers, e.g. for action masking
ablations and for hand-written policies.
"""

from __future__ import annotations

import numpy as np

from repro.rl.spaces import Discrete
from repro.topology.network import Network

__all__ = ["ActionAdapter", "ACTION_PROCESS_LOCALLY"]

#: Alias re-exported for convenience.
from repro.sim.simulator import ACTION_PROCESS_LOCALLY


class ActionAdapter:
    """Maps between DRL actions and coordination decisions for a network."""

    def __init__(self, network: Network) -> None:
        self.network = network
        #: ``Δ_G + 1`` actions, identical for every agent.
        self.space = Discrete(network.degree + 1)

    @property
    def num_actions(self) -> int:
        return self.space.n

    def is_valid(self, node: str, action: int) -> bool:
        """True when ``action`` does not point at a dummy neighbor of ``node``.

        Action 0 is always valid (locally processing or keeping).  Note a
        "valid" forward can still drop the flow at runtime (full link).
        """
        if not self.space.contains(action):
            return False
        return action == 0 or action <= self.network.degree_of(node)

    def valid_action_mask(self, node: str) -> np.ndarray:
        """Boolean mask of shape (Δ_G + 1,), True for valid actions.

        The paper's agents *learn* to avoid dummy neighbors from the -1
        observations and the drop penalty; this mask enables the masking
        ablation (and is used by hand-written baselines).
        """
        mask = np.zeros(self.num_actions, dtype=bool)
        mask[0] = True
        mask[1 : self.network.degree_of(node) + 1] = True
        return mask

    def target_of(self, node: str, action: int) -> str:
        """The node an action routes to: ``node`` itself for 0, else the
        a-th neighbor.  Raises for dummy-neighbor actions."""
        if action == ACTION_PROCESS_LOCALLY:
            return node
        neighbors = self.network.neighbors(node)
        if not 1 <= action <= len(neighbors):
            raise ValueError(
                f"action {action} points at a dummy neighbor of {node!r} "
                f"({len(neighbors)} real neighbors)"
            )
        return neighbors[action - 1]

    def action_for_target(self, node: str, target: str) -> int:
        """Inverse of :meth:`target_of` (used by hand-written baselines)."""
        if target == node:
            return ACTION_PROCESS_LOCALLY
        neighbors = self.network.neighbors(node)
        try:
            return neighbors.index(target) + 1
        except ValueError:
            raise ValueError(f"{target!r} is not a neighbor of {node!r}") from None
