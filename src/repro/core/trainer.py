"""High-level training entry point: Alg. 1 end to end.

Centralized offline training (k seeds x l parallel environment copies,
ACKTR) followed by best-agent selection and deployment as a
:class:`~repro.core.agent.DistributedCoordinator` with one agent per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


from repro.core.agent import DistributedCoordinator
from repro.core.env import CoordinationEnvConfig, ServiceCoordinationEnv
from repro.parallel import EnvBuilder
from repro.rl.acktr import ACKTRConfig
from repro.rl.training import MultiSeedResult, train_multi_seed
from repro.telemetry import NULL_RECORDER, Recorder

__all__ = [
    "CoordinationEnvBuilder",
    "TrainingConfig",
    "TrainingResult",
    "train_coordinator",
]


@dataclass(frozen=True)
class CoordinationEnvBuilder(EnvBuilder):
    """Picklable seed-to-environment factory for one scenario.

    Distinct env seeds give the l parallel environment copies different
    traffic realisations, as in A3C-style training; carrying the seed
    explicitly (instead of a shared counter) lets per-seed training tasks
    run in worker processes with bit-identical results.
    """

    env_config: CoordinationEnvConfig

    def build(self, env_seed: int) -> ServiceCoordinationEnv:
        return ServiceCoordinationEnv(self.env_config, seed=env_seed)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of the full training pipeline (paper Sec. V-A2).

    Attributes:
        algorithm: ``"acktr"`` (paper) or ``"a2c"`` (ablation).
        seeds: Training seeds (paper: k = 10).
        n_envs: Parallel environment copies l (paper: 4).
        updates_per_seed: Gradient updates per seed.
        n_steps: Transitions per env per update (mini-batch b = n_envs *
            n_steps experiences).
        learning_rate: Initial learning rate α (paper: 0.25 for ACKTR).
        gamma: Discount factor (paper: 0.99).
        entropy_coef: Entropy loss coefficient (paper: 0.01).
        value_loss_coef: Critic loss coefficient (paper: 0.25).
        kl_clip: ACKTR trust-region bound (paper: 0.001).
        max_grad_norm: Gradient clip (paper: 0.5).
        eval_episodes: Greedy episodes per seed for best-agent selection.
        workers: Worker processes for the per-seed fan-out (None reads
            ``REPRO_WORKERS``; 1 = serial).
        eval_batch: In-process lockstep width for each seed's selection
            evaluation (None reads ``REPRO_EVAL_BATCH``; 1 = serial);
            composes with ``workers``.  See
            :class:`repro.rl.batched.BatchedEpisodeRunner`.
        eval_dtype: Inference dtype of the batched selection evaluation
            and of the deployed per-node agents (``"f64"``/``"f32"``;
            None reads ``REPRO_EVAL_DTYPE``, float64 when unset).
        kfac_threads: ACKTR actor/critic update concurrency (None reads
            ``REPRO_KFAC_THREADS``, default 2; 1 = serial; bit-identical
            either way).
        stat_interval: Refresh ACKTR's Kronecker-factor statistics every
            this many updates (default 1 = every update, the historical
            bit-identical behaviour; larger values amortize the Fisher
            pass and change the rng stream).
        seed_timeout: Per-seed wall-clock limit in seconds (parallel
            mode); None = no limit.
    """

    algorithm: str = "acktr"
    seeds: Sequence[int] = tuple(range(10))
    n_envs: int = 4
    updates_per_seed: int = 60
    n_steps: int = 32
    learning_rate: float = 0.25
    gamma: float = 0.99
    entropy_coef: float = 0.01
    value_loss_coef: float = 0.25
    kl_clip: float = 0.001
    max_grad_norm: float = 0.5
    eval_episodes: int = 1
    workers: Optional[int] = None
    eval_batch: Optional[int] = None
    eval_dtype: Optional[str] = None
    kfac_threads: Optional[int] = None
    stat_interval: int = 1
    seed_timeout: Optional[float] = None

    def to_acktr_config(self) -> ACKTRConfig:
        return ACKTRConfig(
            gamma=self.gamma,
            learning_rate=self.learning_rate,
            entropy_coef=self.entropy_coef,
            value_loss_coef=self.value_loss_coef,
            max_grad_norm=self.max_grad_norm,
            n_steps=self.n_steps,
            n_envs=self.n_envs,
            kl_clip=self.kl_clip,
            kfac_threads=self.kfac_threads,
            stat_interval=self.stat_interval,
        )

    def quick(self) -> "TrainingConfig":
        """A laptop-scale variant (fewer seeds/updates) for tests and the
        default bench configuration; same algorithm, smaller budget."""
        from dataclasses import replace

        return replace(self, seeds=(0, 1), updates_per_seed=25)


@dataclass
class TrainingResult:
    """Trained coordinator plus the per-seed training record."""

    coordinator: DistributedCoordinator
    multi_seed: MultiSeedResult

    @property
    def best_seed(self) -> int:
        return self.multi_seed.best.seed


def train_coordinator(
    env_config: CoordinationEnvConfig,
    training: TrainingConfig = TrainingConfig(),
    verbose: bool = False,
    recorder: Recorder = NULL_RECORDER,
) -> TrainingResult:
    """Centralized training + distributed deployment (Alg. 1).

    Args:
        env_config: The scenario to train on.
        training: Hyperparameters; defaults match the paper.
        verbose: Print per-seed summaries.
        recorder: Telemetry sink for per-update/per-seed training records
            (see :mod:`repro.telemetry`; no-op default).

    Returns:
        The deployed distributed coordinator (one agent per node holding a
        copy of the best seed's network) and the training record.
    """
    multi_seed = train_multi_seed(
        CoordinationEnvBuilder(env_config),
        config=training.to_acktr_config(),
        seeds=training.seeds,
        updates_per_seed=training.updates_per_seed,
        eval_episodes=training.eval_episodes,
        algorithm=training.algorithm,
        verbose=verbose,
        workers=training.workers,
        timeout=training.seed_timeout,
        eval_batch=training.eval_batch,
        eval_dtype=training.eval_dtype,
        recorder=recorder,
    )
    from repro.rl.batched import resolve_eval_dtype

    coordinator = DistributedCoordinator(
        env_config.network,
        env_config.catalog,
        multi_seed.best_policy,
        deterministic=True,
        dtype=resolve_eval_dtype(training.eval_dtype),
    )
    return TrainingResult(coordinator=coordinator, multi_seed=multi_seed)
