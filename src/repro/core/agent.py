"""Distributed inference: one DRL agent per node (Fig. 4b).

After centralized training, the trained actor network is *copied to every
node*.  Each :class:`NodeAgent` then makes decisions for flows arriving at
its node using only local observations — its own and its direct neighbors'
state — in O(Δ_G) time, independent of network size.  The
:class:`DistributedCoordinator` is the collection of these agents and
doubles as a simulator policy callable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.core.observations import ObservationAdapter
from repro.nn.mlp import MLPInference
from repro.rl.policy import ActorCriticPolicy
from repro.services.service import ServiceCatalog
from repro.sim.simulator import DecisionPoint, Simulator
from repro.topology.network import Network

__all__ = ["NodeAgent", "DistributedCoordinator"]


class NodeAgent:
    """The DRL agent deployed at one network node.

    Holds its own *copy* of the trained policy network (the paper copies
    the selected best network π_θ to each node, Alg. 1 line 14) and an
    observation adapter.  All information it uses is local: the incoming
    flow's attributes and the state of the node and its direct neighbors.

    Args:
        node: The node this agent controls.
        policy: Trained actor-critic whose actor makes the decisions.
        adapter: Observation builder (shared, stateless).
        deterministic: Greedy (argmax) actions when True — the default for
            online inference; sampling is used during training only.
        rng: Generator for stochastic action selection.
        dtype: Inference dtype.  Float64 (default) runs the exact
            historical ``act_single`` path; float32 routes decisions
            through a workspace-backed batch-1
            :class:`~repro.nn.mlp.MLPInference` forward (fast mode, last
            ulps may differ).  Stochastic float32 sampling consumes the
            rng stream in the same ``(1, K)`` draws as the serial path.
    """

    def __init__(
        self,
        node: str,
        policy: ActorCriticPolicy,
        adapter: ObservationAdapter,
        deterministic: bool = True,
        rng: Optional[np.random.Generator] = None,
        dtype: Any = np.float64,
    ) -> None:
        from repro.rl.batched import resolve_eval_dtype

        self.node = node
        self.policy = policy
        self.adapter = adapter
        self.deterministic = deterministic
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.dtype = resolve_eval_dtype(dtype)
        self._inference: Optional[MLPInference] = (
            None
            if self.dtype == np.dtype(np.float64)
            else policy.actor_inference(dtype=self.dtype)
        )
        #: Decisions taken by this agent (per-node load statistics).
        self.decisions_taken = 0

    def act(self, decision: DecisionPoint, sim: Simulator) -> int:
        """Select the action for a flow at this agent's node."""
        if decision.node != self.node:
            raise ValueError(
                f"agent at {self.node!r} asked to act for node {decision.node!r}"
            )
        observation = self.adapter.build(decision, sim)
        self.decisions_taken += 1
        if self._inference is None:
            return self.policy.act_single(
                observation, rng=self.rng, deterministic=self.deterministic
            )
        logits = self._inference.forward(
            np.asarray(observation, dtype=np.float64)[None, :]
        )
        if self.deterministic:
            return int(np.argmax(logits[0]))
        gumbel = -np.log(-np.log(self.rng.uniform(1e-12, 1.0, size=logits.shape)))
        return int(np.argmax(logits[0] + gumbel[0]))


class DistributedCoordinator:
    """All per-node agents of a network; usable as a simulator policy.

    Every node gets an agent holding a *clone* of the trained policy, so
    inference at different nodes is fully independent (no shared mutable
    state beyond the frozen weights) — mirroring the paper's deployment
    where each node runs its own copy of the neural network.

    Args:
        network: Substrate network (one agent per node).
        catalog: Services (needed by the observation adapter).
        policy: The trained policy selected by multi-seed training.
        deterministic: Greedy decisions (default for inference).
        seed: Base seed for per-agent stochastic sampling.
        dtype: Per-agent inference dtype (``"f64"``/``"f32"`` or a numpy
            dtype) — see :class:`NodeAgent`.
    """

    def __init__(
        self,
        network: Network,
        catalog: ServiceCatalog,
        policy: ActorCriticPolicy,
        deterministic: bool = True,
        seed: int = 0,
        dtype: Any = np.float64,
    ) -> None:
        from repro.rl.batched import resolve_eval_dtype

        self.network = network
        self.seed = seed
        self.dtype = resolve_eval_dtype(dtype)
        self.adapter = ObservationAdapter(network, catalog)
        if policy.obs_dim != self.adapter.size:
            raise ValueError(
                f"policy expects observations of size {policy.obs_dim}, but this "
                f"network's degree gives size {self.adapter.size}; train on a "
                "network with the same degree or retrain"
            )
        seeds = np.random.SeedSequence(seed).spawn(network.num_nodes)
        self.agents: Dict[str, NodeAgent] = {
            node: NodeAgent(
                node,
                policy.clone(),
                self.adapter,
                deterministic=deterministic,
                rng=np.random.default_rng(child),
                dtype=self.dtype,
            )
            for node, child in zip(network.node_names, seeds)
        }

    def __call__(self, decision: DecisionPoint, sim: Simulator) -> int:
        """Route the decision to the agent at the decision's node."""
        return self.agents[decision.node].act(decision, sim)

    def fresh(self) -> "DistributedCoordinator":
        """A new coordinator sharing the trained weights with reset
        per-agent runtime state (rng streams, decision counters)."""
        any_agent = next(iter(self.agents.values()))
        return DistributedCoordinator(
            self.network,
            self.adapter.catalog,
            any_agent.policy,
            deterministic=any_agent.deterministic,
            seed=self.seed,
            dtype=self.dtype,
        )

    def decision_counts(self) -> Dict[str, int]:
        """Per-node decision counts (how evenly load spreads over agents)."""
        return {node: agent.decisions_taken for node, agent in self.agents.items()}
