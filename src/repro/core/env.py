"""Gym-style environment over the flow-level simulator.

This is the "adapter" of the paper's implementation (Fig. 5): it connects
a DRL agent to the network simulation by translating pending coordination
decisions into observations, agent outputs into simulator actions, and
simulator outcomes into rewards.

One *episode* is one simulated horizon; one *step* is one coordination
decision (any flow at any node).  Training one shared network over this
stream of per-node decisions is exactly the paper's centralized-training
scheme: experience from all (virtual) per-node agents flows into a single
policy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.analysis.invariants import InvariantViolation
from repro.core.actions import ActionAdapter
from repro.core.observations import ObservationAdapter
from repro.core.rewards import RewardConfig, RewardFunction
from repro.services.service import ServiceCatalog
from repro.sim.config import SimulationConfig
from repro.sim.simulator import DecisionPoint, Simulator
from repro.topology.network import Network
from repro.traffic.flows import FlowSpec

__all__ = ["CoordinationEnvConfig", "ServiceCoordinationEnv"]

#: Builds the (time-ordered) traffic for one episode from an rng.
TrafficFactory = Callable[[np.random.Generator], Iterable[FlowSpec]]


@dataclass(frozen=True)
class CoordinationEnvConfig:
    """Everything needed to instantiate episodes of one scenario.

    Attributes:
        network: Substrate network (with ingress/egress sets).
        catalog: Available services.
        traffic_factory: Called once per episode with a fresh generator;
            must return the episode's flows in arrival-time order.
        sim_config: Simulator knobs (horizon etc.).
        reward: Reward magnitudes / shaping switches.
    """

    network: Network
    catalog: ServiceCatalog
    traffic_factory: TrafficFactory
    sim_config: SimulationConfig = SimulationConfig()
    reward: RewardConfig = RewardConfig()

    def with_network(self, network: Network) -> "CoordinationEnvConfig":
        """Copy of this config over a different network (generalization
        experiments test a policy trained on one scenario in another)."""
        return replace(self, network=network)


class ServiceCoordinationEnv:
    """Per-decision RL environment over :class:`~repro.sim.simulator.Simulator`.

    Implements the :class:`repro.rl.runner.Env` protocol.  Observation and
    action spaces are sized by the network degree Δ_G (``4Δ_G + 4`` and
    ``Δ_G + 1``), invariant to the number of nodes — the paper's key
    scalability property.

    Args:
        config: Scenario description.
        seed: Base seed; each :meth:`reset` draws a fresh child seed so
            parallel env copies and successive episodes see different
            traffic realisations.  Episode ``k``'s traffic depends only on
            ``(seed, k)`` — see :meth:`reset_episode` — so clones can
            replay the exact episode stream in any interleaving.
    """

    def __init__(self, config: CoordinationEnvConfig, seed: Optional[int] = None) -> None:
        self.config = config
        self.observation_adapter = ObservationAdapter(config.network, config.catalog)
        self.action_adapter = ActionAdapter(config.network)
        self.reward_function = RewardFunction(config.network, config.reward)
        self.observation_size = self.observation_adapter.size
        self.num_actions = self.action_adapter.num_actions
        seed_seq = np.random.SeedSequence(seed)
        self._entropy = seed_seq.entropy
        self._spawn_key = seed_seq.spawn_key
        self._next_episode = 0
        #: When set (a float64 vector of shape ``(observation_size,)``),
        #: observations are written into this array in place and it is
        #: returned from reset/step — the batched evaluation engine binds
        #: one row of its decision matrix per env clone.
        self.observation_out: Optional[np.ndarray] = None
        #: When False (and ``observation_out`` is unset), reset/step return
        #: the observation adapter's scratch buffer instead of a copy; only
        #: for drivers that consume the vector before the next build on
        #: this env's adapter (e.g. RolloutRunner, which copies rows into
        #: its preallocated batch buffers immediately).
        self.copy_observations = True
        #: Optional :class:`repro.profiling.PhaseAccumulator`; when set,
        #: step()/reset() attribute their wall time to the ``sim_advance``
        #: and ``obs_build`` phases (one branch per step when unset).
        self.profiler = None
        self._sim: Optional[Simulator] = None
        self._decision: Optional[DecisionPoint] = None
        self._episode_done = True

    # ------------------------------------------------------------------

    @property
    def simulator(self) -> Simulator:
        """The live simulator of the current episode (for baselines/tests)."""
        if self._sim is None:
            raise RuntimeError("environment not reset yet")
        return self._sim

    @property
    def current_decision(self) -> Optional[DecisionPoint]:
        return self._decision

    @property
    def next_episode_index(self) -> int:
        """Absolute index of the episode the next :meth:`reset` will play."""
        return self._next_episode

    def episode_rng(self, index: int) -> np.random.Generator:
        """The traffic generator for absolute episode ``index``.

        Reconstructs the ``index``-th spawn child of the env's base
        :class:`numpy.random.SeedSequence` explicitly (spawn child ``k``
        is the sequence with ``spawn_key = parent_key + (k,)``), so any
        episode can be replayed without consuming the parent's spawn
        counter — the basis of :meth:`reset_episode` and :meth:`clone`.
        """
        seq = np.random.SeedSequence(
            entropy=self._entropy, spawn_key=(*self._spawn_key, index)
        )
        return np.random.default_rng(seq)

    def consume_episodes(self, count: int) -> None:
        """Advance the episode counter without playing — the master env's
        bookkeeping when clones replay its next ``count`` episodes."""
        if count < 0:
            raise ValueError(f"cannot consume {count} episodes")
        self._next_episode += count

    def clone(self) -> "ServiceCoordinationEnv":
        """An independent env replaying this env's episode stream.

        The clone shares the immutable pieces (config, observation /
        action / reward adapters) but has its own simulator state and
        episode counter, so many clones can run logically-parallel
        episodes.  Because the observation adapter (and its scratch
        buffer) is shared, interleaved clones must not rely on
        ``copy_observations = False``; bind a private ``observation_out``
        row instead — that path bypasses the shared scratch entirely.
        """
        twin = self.__class__.__new__(self.__class__)
        twin.config = self.config
        twin.observation_adapter = self.observation_adapter
        twin.action_adapter = self.action_adapter
        twin.reward_function = self.reward_function
        twin.observation_size = self.observation_size
        twin.num_actions = self.num_actions
        twin._entropy = self._entropy
        twin._spawn_key = self._spawn_key
        twin._next_episode = self._next_episode
        twin.observation_out = None
        twin.copy_observations = self.copy_observations
        twin.profiler = None
        twin._sim = None
        twin._decision = None
        twin._episode_done = True
        return twin

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the first decision's observation."""
        return self.reset_episode(self._next_episode)

    def reset_episode(self, index: int) -> np.ndarray:
        """Start absolute episode ``index`` — the traffic realisation the
        ``index + 1``-th :meth:`reset` of a same-seed env would play.
        Sets the counter so a subsequent plain ``reset()`` plays
        ``index + 1``."""
        prof = self.profiler
        start = perf_counter() if prof is not None else 0.0
        rng = self.episode_rng(index)
        self._next_episode = index + 1
        traffic = self.config.traffic_factory(rng)
        self._sim = Simulator(
            self.config.network, self.config.catalog, traffic, self.config.sim_config
        )
        self._decision = self._sim.next_decision()
        self._sim.drain_outcomes()
        self._episode_done = self._decision is None
        if prof is not None:
            mid = perf_counter()
            prof.sim_advance += mid - start
        if self._decision is None:
            # Degenerate scenario with no flows before the horizon: return
            # a zero observation; the first step will terminate immediately.
            return self._zero_observation()
        obs = self._observe(self._decision)
        if prof is not None:
            prof.obs_build += perf_counter() - mid
        return obs

    def _observe(self, decision: DecisionPoint) -> np.ndarray:
        return self.observation_adapter.build(
            decision,
            self._sim,
            out=self.observation_out,
            copy=self.copy_observations,
        )

    def _zero_observation(self) -> np.ndarray:
        if self.observation_out is not None:
            self.observation_out[:] = 0.0
            return self.observation_out
        return np.zeros(self.observation_size)

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """Resolve the pending decision and advance to the next one.

        The step reward aggregates every outcome that materialised between
        this decision and the next — immediate shaping (link penalty,
        instance bonus) as well as terminal credits of *other* flows that
        completed or dropped in the meantime.  Pooling credit this way is
        what lets one shared network learn from all agents' experience.
        """
        if self._sim is None:
            raise RuntimeError("call reset() before step()")
        if self._episode_done:
            raise RuntimeError("episode finished; call reset()")
        if self._decision is None:
            raise InvariantViolation(
                "pending decision missing while the episode is still live"
            )
        prof = self.profiler
        start = perf_counter() if prof is not None else 0.0
        self._sim.apply_action(action)
        next_decision = self._sim.next_decision()
        reward = self.reward_function.total(self._sim.drain_outcomes())
        self._decision = next_decision
        info: Dict[str, Any] = {}
        if next_decision is None:
            self._episode_done = True
            metrics = self._sim.finalize()
            info = {
                "success_ratio": metrics.success_ratio,
                "flows_generated": metrics.flows_generated,
                "flows_succeeded": metrics.flows_succeeded,
                "flows_dropped": metrics.flows_dropped,
                "avg_end_to_end_delay": metrics.avg_end_to_end_delay,
            }
            if prof is not None:
                prof.sim_advance += perf_counter() - start
                prof.steps += 1
            obs = self._zero_observation()
        else:
            if prof is None:
                obs = self._observe(next_decision)
            else:
                mid = perf_counter()
                prof.sim_advance += mid - start
                prof.steps += 1
                obs = self._observe(next_decision)
                prof.obs_build += perf_counter() - mid
        return obs, float(reward), self._episode_done, info
