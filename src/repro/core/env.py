"""Gym-style environment over the flow-level simulator.

This is the "adapter" of the paper's implementation (Fig. 5): it connects
a DRL agent to the network simulation by translating pending coordination
decisions into observations, agent outputs into simulator actions, and
simulator outcomes into rewards.

One *episode* is one simulated horizon; one *step* is one coordination
decision (any flow at any node).  Training one shared network over this
stream of per-node decisions is exactly the paper's centralized-training
scheme: experience from all (virtual) per-node agents flows into a single
policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.actions import ActionAdapter
from repro.core.observations import ObservationAdapter
from repro.core.rewards import RewardConfig, RewardFunction
from repro.services.service import ServiceCatalog
from repro.sim.config import SimulationConfig
from repro.sim.simulator import DecisionPoint, Simulator
from repro.topology.network import Network
from repro.traffic.flows import FlowSpec

__all__ = ["CoordinationEnvConfig", "ServiceCoordinationEnv"]

#: Builds the (time-ordered) traffic for one episode from an rng.
TrafficFactory = Callable[[np.random.Generator], Iterable[FlowSpec]]


@dataclass(frozen=True)
class CoordinationEnvConfig:
    """Everything needed to instantiate episodes of one scenario.

    Attributes:
        network: Substrate network (with ingress/egress sets).
        catalog: Available services.
        traffic_factory: Called once per episode with a fresh generator;
            must return the episode's flows in arrival-time order.
        sim_config: Simulator knobs (horizon etc.).
        reward: Reward magnitudes / shaping switches.
    """

    network: Network
    catalog: ServiceCatalog
    traffic_factory: TrafficFactory
    sim_config: SimulationConfig = SimulationConfig()
    reward: RewardConfig = RewardConfig()

    def with_network(self, network: Network) -> "CoordinationEnvConfig":
        """Copy of this config over a different network (generalization
        experiments test a policy trained on one scenario in another)."""
        return replace(self, network=network)


class ServiceCoordinationEnv:
    """Per-decision RL environment over :class:`~repro.sim.simulator.Simulator`.

    Implements the :class:`repro.rl.runner.Env` protocol.  Observation and
    action spaces are sized by the network degree Δ_G (``4Δ_G + 4`` and
    ``Δ_G + 1``), invariant to the number of nodes — the paper's key
    scalability property.

    Args:
        config: Scenario description.
        seed: Base seed; each :meth:`reset` draws a fresh child seed so
            parallel env copies and successive episodes see different
            traffic realisations.
    """

    def __init__(self, config: CoordinationEnvConfig, seed: Optional[int] = None) -> None:
        self.config = config
        self.observation_adapter = ObservationAdapter(config.network, config.catalog)
        self.action_adapter = ActionAdapter(config.network)
        self.reward_function = RewardFunction(config.network, config.reward)
        self.observation_size = self.observation_adapter.size
        self.num_actions = self.action_adapter.num_actions
        self._seed_seq = np.random.SeedSequence(seed)
        self._sim: Optional[Simulator] = None
        self._decision: Optional[DecisionPoint] = None
        self._episode_done = True

    # ------------------------------------------------------------------

    @property
    def simulator(self) -> Simulator:
        """The live simulator of the current episode (for baselines/tests)."""
        if self._sim is None:
            raise RuntimeError("environment not reset yet")
        return self._sim

    @property
    def current_decision(self) -> Optional[DecisionPoint]:
        return self._decision

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the first decision's observation."""
        child = self._seed_seq.spawn(1)[0]
        rng = np.random.default_rng(child)
        traffic = self.config.traffic_factory(rng)
        self._sim = Simulator(
            self.config.network, self.config.catalog, traffic, self.config.sim_config
        )
        self._decision = self._sim.next_decision()
        self._sim.drain_outcomes()
        self._episode_done = self._decision is None
        if self._decision is None:
            # Degenerate scenario with no flows before the horizon: return
            # a zero observation; the first step will terminate immediately.
            return np.zeros(self.observation_size)
        return self.observation_adapter.build(self._decision, self._sim)

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """Resolve the pending decision and advance to the next one.

        The step reward aggregates every outcome that materialised between
        this decision and the next — immediate shaping (link penalty,
        instance bonus) as well as terminal credits of *other* flows that
        completed or dropped in the meantime.  Pooling credit this way is
        what lets one shared network learn from all agents' experience.
        """
        if self._sim is None:
            raise RuntimeError("call reset() before step()")
        if self._episode_done:
            raise RuntimeError("episode finished; call reset()")
        assert self._decision is not None
        self._sim.apply_action(action)
        next_decision = self._sim.next_decision()
        reward = self.reward_function.total(self._sim.drain_outcomes())
        self._decision = next_decision
        info: Dict[str, Any] = {}
        if next_decision is None:
            self._episode_done = True
            metrics = self._sim.finalize()
            info = {
                "success_ratio": metrics.success_ratio,
                "flows_generated": metrics.flows_generated,
                "flows_succeeded": metrics.flows_succeeded,
                "flows_dropped": metrics.flows_dropped,
                "avg_end_to_end_delay": metrics.avg_end_to_end_delay,
            }
            obs = np.zeros(self.observation_size)
        else:
            obs = self.observation_adapter.build(next_decision, self._sim)
        return obs, float(reward), self._episode_done, info
