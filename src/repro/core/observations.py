"""Observation adapter: the local, partial observation of Sec. IV-B1.

Each DRL agent observes only the incoming flow, its own node, and its
direct neighbors:

    O = < F_f, R^L_v, R^V_v, D_{v,f}, X_v >

======  ============================  =========  ==========================
Part    Meaning                       Size       Range
======  ============================  =========  ==========================
F_f     flow progress + deadline      2          [0, 1]
R^L_v   free link rate per neighbor   Δ_G        [-1, 1] (dummy: -1)
R^V_v   free compute at v+neighbors   Δ_G + 1    [-1, 1] (dummy: -1)
D_v,f   egress reachability/neighbor  Δ_G        [-1, 1] (dummy: -1)
X_v     instance of c_f available?    Δ_G + 1    {0, 1}  (dummy: -1)
======  ============================  =========  ==========================

Total: ``4 Δ_G + 4``.  All agents share the same observation size — nodes
with fewer than Δ_G neighbors are padded with dummy entries of -1 — which
is what allows training a single network from all agents' experience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rl.spaces import Box
from repro.services.service import ServiceCatalog
from repro.sim.simulator import DecisionPoint, Simulator
from repro.topology.network import Network
from repro.traffic.flows import Flow

__all__ = ["ObservationAdapter", "ObservationParts"]

#: Value marking dummy (non-existing) neighbors in padded observations.
DUMMY = -1.0


@dataclass(frozen=True)
class ObservationParts:
    """The five observation components, before concatenation.

    Useful in tests and for interpretability: each part can be checked
    against the paper's formulas independently.
    """

    flow_attributes: np.ndarray   # F_f, size 2
    link_utilization: np.ndarray  # R^L_v, size Δ_G
    node_utilization: np.ndarray  # R^V_v, size Δ_G + 1
    delays_to_egress: np.ndarray  # D_{v,f}, size Δ_G
    available_instances: np.ndarray  # X_v, size Δ_G + 1

    def concatenate(self) -> np.ndarray:
        return np.concatenate(
            [
                self.flow_attributes,
                self.link_utilization,
                self.node_utilization,
                self.delays_to_egress,
                self.available_instances,
            ]
        )


class ObservationAdapter:
    """Builds the paper's padded local observation vector for any node.

    Args:
        network: Substrate network (provides Δ_G, neighbor order, shortest
            path delays, capacity normalisers).
        catalog: Service catalog (resource demand of the requested
            component).
    """

    def __init__(self, network: Network, catalog: ServiceCatalog) -> None:
        self.network = network
        self.catalog = catalog
        self.degree = network.degree
        self.size = 4 * self.degree + 4
        #: Gym-style observation space descriptor.
        self.space = Box(low=-1.0, high=1.0, shape=(self.size,))
        # max_{v'' in V} cap_{v''}: node observations are normalised by the
        # network-wide maximum so agents can spot absolutely large nodes.
        self._max_node_capacity = max(network.max_node_capacity, 1e-12)
        self._max_link_capacity = {
            v: max(network.max_link_capacity_at(v), 1e-12)
            for v in network.node_names
        }
        # Preallocated assembly buffer plus cached neighbor tuples: build()
        # fills the buffer in place and returns one copy, so the per-decision
        # hot path allocates a single vector instead of five parts plus
        # their clipped/concatenated intermediates.
        self._scratch = np.empty(self.size, dtype=np.float64)
        self._neighbors = {v: tuple(network.neighbors(v)) for v in network.node_names}
        # Integer gather tables per node, one dict lookup per build():
        # (degree k, combined gather ids, capacities as a python-float
        # tuple, link norm, self+neighbor node ids).  The combined ids
        # address NetworkState.loads_vector — k outgoing-link slots
        # followed by 1+k node slots — so one ``take`` fetches every load
        # the observation needs; the arithmetic then runs on python floats
        # (via ``tolist``), which beats a pile of length-≤5 ufunc
        # dispatches while performing the exact same IEEE operations per
        # element as the scalar reference in build_parts.
        num_links = network.num_links
        self._node_tables: Dict[
            str, Tuple[int, np.ndarray, Tuple[float, ...], float, np.ndarray]
        ] = {
            v: (
                len(self._neighbors[v]),
                np.concatenate(
                    [
                        network.neighbor_link_ids(v),
                        network.self_and_neighbor_ids(v) + num_links,
                    ]
                ).astype(np.intp),
                tuple(network.neighbor_link_capacities(v).tolist())
                + tuple(network.self_and_neighbor_capacities(v).tolist()),
                self._max_link_capacity[v],
                network.self_and_neighbor_ids(v),
            )
            for v in network.node_names
        }
        self._gather = np.empty(2 * self.degree + 1, dtype=np.float64)
        # Scratch for effective capacities under fault injection; the
        # fault-free hot path never touches it (static cached caps).
        self._caps_scratch = np.empty(2 * self.degree + 1, dtype=np.float64)
        # Per-(node, egress) shortest-path-via-neighbor delays, filled
        # lazily on first use: build() then reads one cached tuple instead
        # of doing a dict lookup per neighbor per decision.  Each entry is
        # (via_delays as python floats, non_finite_indices_or_None).
        self._delay_via: Dict[
            Tuple[str, str], Tuple[Tuple[float, ...], Optional[Tuple[int, ...]]]
        ] = {}

    @property
    def part_slices(self) -> Dict[str, slice]:
        """Index ranges of the five parts inside the concatenated vector.

        Keys: ``flow``, ``links``, ``nodes``, ``delays``, ``instances``.
        Used by observation-ablation experiments to mask single parts.
        """
        d = self.degree
        return {
            "flow": slice(0, 2),
            "links": slice(2, 2 + d),
            "nodes": slice(2 + d, 3 + 2 * d),
            "delays": slice(3 + 2 * d, 3 + 3 * d),
            "instances": slice(3 + 3 * d, 4 + 4 * d),
        }

    # ------------------------------------------------------------------

    def _delays_via(
        self, node: str, egress: str
    ) -> Tuple[Tuple[float, ...], Optional[Tuple[int, ...]]]:
        """Cached ``link(node, nb).delay + spd(nb, egress)`` per neighbor,
        plus the indices of non-finite entries (unreachable egress), or
        None when all entries are finite (the common case)."""
        key = (node, egress)
        entry = self._delay_via.get(key)
        if entry is None:
            via = tuple(
                float(
                    self.network.link(node, nb).delay
                    + self.network.shortest_path_delay(nb, egress)
                )
                for nb in self._neighbors[node]
            )
            bad = tuple(j for j, value in enumerate(via) if not np.isfinite(value))
            entry = (via, bad if bad else None)
            self._delay_via[key] = entry
        return entry

    def build(
        self,
        decision: DecisionPoint,
        sim: Simulator,
        out: Optional[np.ndarray] = None,
        copy: bool = True,
    ) -> np.ndarray:
        """Observation vector for a pending decision.

        Numerically identical to ``build_parts(...).concatenate()``, but
        assembled in the preallocated scratch buffer: the hot path pays a
        single allocation (the returned copy) per decision — or none at
        all with ``out=`` / ``copy=False``.

        Args:
            out: Optional destination vector of shape ``(size,)`` written
                in place and returned — lets the batched evaluation engine
                build observations directly into rows of its ``(M, size)``
                decision matrix.
            copy: Only meaningful when ``out`` is None.  The default True
                returns a private copy; ``copy=False`` returns the
                adapter's internal scratch buffer, which stays valid only
                until the next ``build()`` on this adapter — strictly for
                callers (RolloutRunner, the batched runner) that consume
                or copy the vector before then.
        """
        flow, node, now = decision.flow, decision.node, decision.time
        d = self.degree
        if out is None:
            target = self._scratch
        else:
            if out.shape != (self.size,):
                raise ValueError(
                    f"observation out= must have shape ({self.size},), got {out.shape}"
                )
            target = out
        state = sim.state
        k, combo_ids, caps, link_norm, sn_ids = self._node_tables[node]

        # One gather for every load this observation reads (k outgoing
        # links, then the 1+k self-and-neighbor nodes), converted to
        # python floats: the per-element arithmetic below is then plain
        # float math — the exact same IEEE ops, in the same order, as the
        # scalar reference implementations in build_parts.
        gather = self._gather[: 2 * k + 1]
        state.loads_vector.take(combo_ids, out=gather)
        loads = gather.tolist()

        # Under fault injection the static capacity cache is replaced by
        # the state's *effective* capacities: a failed neighbor link/node
        # has capacity 0, so it reads as fully utilised (<= -λ̂ margin)
        # and agents learn to route around it.  Delay entries stay static
        # — topology knowledge, not load observation (Sec. IV-B1d).
        if sim.faults is not None:
            eff = self._caps_scratch[: 2 * k + 1]
            state.effective_link_capacities.take(combo_ids[:k], out=eff[:k])
            state.effective_node_capacities.take(sn_ids, out=eff[k:])
            caps = tuple(eff.tolist())

        spec = flow.spec
        ci = flow.component_index
        deadline = spec.deadline
        remaining = deadline - (now - spec.arrival_time)

        # F_f = <p̂_f, τ̂_f>
        target[0] = 1.0 if ci is None else ci / flow.chain_length
        target[1] = max(0.0, remaining / deadline)

        # R^L_v: free rate minus λ_f per outgoing link, clipped to [-1, 1].
        rate = spec.data_rate
        i = 2
        for j in range(k):
            value = (caps[j] - loads[j] - rate) / link_norm
            target[i + j] = (
                -1.0 if value < -1.0 else (1.0 if value > 1.0 else value)
            )

        # R^V_v: free compute minus r_c(λ_f) at v and neighbors, clipped.
        component_name: Optional[str]
        if ci is None:
            component_name = None
            demand = 0.0
        else:
            service = flow.service_obj
            if service is not None and flow.demands is not None:
                component_name = service.components[ci].name
                demand = flow.demands[ci]
            else:
                service = self.catalog.service(flow.service)
                component = service.component_at(ci)
                component_name = component.name
                demand = component.resources(rate)
        node_norm = self._max_node_capacity
        i = 2 + d
        for j in range(1 + k):
            value = (caps[k + j] - loads[k + j] - demand) / node_norm
            target[i + j] = (
                -1.0 if value < -1.0 else (1.0 if value > 1.0 else value)
            )

        # D_{v,f}: deadline margin via each neighbor (no upper clip).
        i = 3 + 2 * d
        if remaining <= 0:
            target[i : i + k] = -1.0
        else:
            via, bad = self._delays_via(node, flow.egress)
            for j in range(k):
                value = (remaining - via[j]) / remaining
                target[i + j] = -1.0 if value < -1.0 else value
            if bad is not None:
                for j in bad:
                    target[i + j] = -1.0

        # X_v: instance of the requested component at v / neighbors, read
        # as one gather from the state's per-component presence vector.
        i = 3 + 3 * d
        seg = target[i : i + 1 + k]
        presence = (
            state.instance_presence(component_name)
            if component_name is not None
            else None
        )
        if presence is None:
            seg[:] = 0.0
        else:
            presence.take(sn_ids, out=seg)

        # Dummy padding for nodes below the maximum degree.
        if k != d:
            target[2 + k : 2 + d] = DUMMY
            target[3 + d + k : 3 + 2 * d] = DUMMY
            target[3 + 2 * d + k : 3 + 3 * d] = DUMMY
            target[4 + 3 * d + k : self.size] = DUMMY

        if out is not None or not copy:
            return target
        return target.copy()

    def build_parts(self, decision: DecisionPoint, sim: Simulator) -> ObservationParts:
        """The five observation components for a pending decision."""
        flow, node, now = decision.flow, decision.node, decision.time
        neighbors = self.network.neighbors(node)
        pad = self.degree - len(neighbors)

        return ObservationParts(
            flow_attributes=self._flow_attributes(flow, now),
            link_utilization=self._link_utilization(flow, node, neighbors, pad, sim),
            node_utilization=self._node_utilization(flow, node, neighbors, pad, sim),
            delays_to_egress=self._delays_to_egress(flow, node, neighbors, pad, now),
            available_instances=self._available_instances(flow, node, neighbors, pad, sim),
        )

    # ------------------------------------------------------------------
    # The five parts (Sec. IV-B1 a-e)
    # ------------------------------------------------------------------

    def _flow_attributes(self, flow: Flow, now: float) -> np.ndarray:
        """F_f = <p̂_f, τ̂_f>: chain progress and normalised remaining time."""
        return np.array(
            [flow.progress, flow.normalized_remaining_time(now)], dtype=np.float64
        )

    def _link_utilization(
        self, flow: Flow, node: str, neighbors: List[str], pad: int, sim: Simulator
    ) -> np.ndarray:
        """R^L_v: free rate minus λ_f per outgoing link, normalised by the
        largest outgoing-link capacity; >= 0 iff the link can carry f."""
        norm = self._max_link_capacity[node]
        values = [
            (sim.state.link_free(node, nb) - flow.data_rate) / norm
            for nb in neighbors
        ]
        values.extend([DUMMY] * pad)
        return np.clip(np.array(values, dtype=np.float64), -1.0, 1.0)

    def _node_utilization(
        self, flow: Flow, node: str, neighbors: List[str], pad: int, sim: Simulator
    ) -> np.ndarray:
        """R^V_v: free compute minus r_c(λ_f) at v and each neighbor,
        normalised by the network-wide max node capacity; >= 0 iff the node
        could process f's requested component."""
        if flow.fully_processed:
            demand = 0.0
        else:
            service = self.catalog.service(flow.service)
            component = service.component_at(flow.component_index)
            demand = component.resources(flow.data_rate)
        values = [
            (sim.state.node_free(v) - demand) / self._max_node_capacity
            for v in [node] + neighbors
        ]
        values.extend([DUMMY] * pad)
        return np.clip(np.array(values, dtype=np.float64), -1.0, 1.0)

    def _delays_to_egress(
        self, flow: Flow, node: str, neighbors: List[str], pad: int, now: float
    ) -> np.ndarray:
        """D_{v,f}: per neighbor v', the margin of the remaining deadline
        over the shortest-path delay via v' to f's egress; < 0 means
        forwarding via v' cannot possibly meet the deadline."""
        remaining = flow.remaining_time(now)
        values = []
        for nb in neighbors:
            via = self.network.link(node, nb).delay + self.network.shortest_path_delay(
                nb, flow.egress
            )
            if remaining <= 0 or not np.isfinite(via):
                values.append(-1.0)
            else:
                values.append(max(-1.0, (remaining - via) / remaining))
        values.extend([DUMMY] * pad)
        return np.array(values, dtype=np.float64)

    def _available_instances(
        self, flow: Flow, node: str, neighbors: List[str], pad: int, sim: Simulator
    ) -> np.ndarray:
        """X_v: 1 where an instance of the requested component is placed at
        v / its neighbors (always 0 once the flow is fully processed)."""
        if flow.fully_processed:
            values = [0.0] * (1 + len(neighbors))
        else:
            service = self.catalog.service(flow.service)
            component = service.component_at(flow.component_index)
            values = [
                1.0 if sim.state.has_instance(v, component.name) else 0.0
                for v in [node] + neighbors
            ]
        values.extend([DUMMY] * pad)
        return np.array(values, dtype=np.float64)
