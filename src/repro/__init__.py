"""repro — Distributed Online Service Coordination Using Deep RL.

A from-scratch Python reproduction of Schneider, Qarawlus & Karl,
"Distributed Online Service Coordination Using Deep Reinforcement
Learning" (IEEE ICDCS 2021): a flow-level network simulator, a pure-numpy
ACKTR/A2C reinforcement-learning stack, the paper's distributed per-node
DRL coordination approach, the compared baselines (central DRL, GCASP,
SP), and the full evaluation harness for every table and figure.

Quickstart::

    from repro.eval import base_scenario
    from repro.core import train_coordinator, TrainingConfig
    from repro.sim import Simulator
    import numpy as np

    scenario = base_scenario(pattern="poisson", num_ingress=2)
    result = train_coordinator(scenario, TrainingConfig().quick())
    traffic = scenario.traffic_factory(np.random.default_rng(0))
    sim = Simulator(scenario.network, scenario.catalog, traffic,
                    scenario.sim_config)
    print(sim.run(result.coordinator).summary())

See README.md for the architecture overview and DESIGN.md / EXPERIMENTS.md
for the paper-reproduction inventory.
"""

__version__ = "1.0.0"

from repro import (
    analysis,
    baselines,
    core,
    eval,
    nn,
    rl,
    services,
    sim,
    topology,
    traffic,
)

__all__ = [
    "__version__",
    "analysis",
    "baselines",
    "core",
    "eval",
    "nn",
    "rl",
    "services",
    "sim",
    "topology",
    "traffic",
]
