"""Traffic substrate: flow model, arrival processes, traces."""

from repro.traffic.flows import Flow, FlowSpec, FlowStatus
from repro.traffic.arrival import (
    ArrivalProcess,
    FixedArrival,
    FlowTemplate,
    MMPPArrival,
    PoissonArrival,
    RateFunctionArrival,
    TrafficSource,
)
from repro.traffic.traces import (
    RateTrace,
    TraceArrival,
    load_trace,
    save_trace,
    synthetic_abilene_trace,
)

__all__ = [
    "Flow",
    "FlowSpec",
    "FlowStatus",
    "ArrivalProcess",
    "FixedArrival",
    "FlowTemplate",
    "MMPPArrival",
    "PoissonArrival",
    "RateFunctionArrival",
    "TrafficSource",
    "RateTrace",
    "TraceArrival",
    "load_trace",
    "save_trace",
    "synthetic_abilene_trace",
]
