"""Flow arrival processes.

The paper evaluates four traffic patterns (Sec. V-B):

- **fixed** — deterministic arrival every ``interval`` time steps,
- **Poisson** — exponentially distributed inter-arrival times,
- **MMPP** — a Markov-modulated Poisson process alternating between a slow
  and a fast Poisson state,
- **trace-driven** — arrival rates following real-world (here: synthetic
  diurnal) traffic traces, see :mod:`repro.traffic.traces`.

Every process implements :class:`ArrivalProcess`: a stateful iterator of
arrival times for a *single* ingress node.  A :class:`TrafficSource`
combines one process per ingress with flow attributes (service, egress,
rate, duration, deadline) and yields :class:`~repro.traffic.flows.FlowSpec`
objects in global time order, which is exactly what the simulator consumes.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.traffic.flows import FlowSpec

__all__ = [
    "ArrivalProcess",
    "FixedArrival",
    "PoissonArrival",
    "MMPPArrival",
    "RateFunctionArrival",
    "FlowTemplate",
    "TrafficSource",
]


class ArrivalProcess(ABC):
    """Generator of arrival times for one ingress node.

    Subclasses implement :meth:`next_arrival`, returning the absolute time
    of the next arrival after ``after`` (or ``None`` when the process is
    exhausted).  Processes own their random state so that different
    ingresses and different experiment seeds are independent.
    """

    @abstractmethod
    def next_arrival(self, after: float) -> Optional[float]:
        """Absolute time of the next arrival strictly after ``after``."""

    def arrivals_until(self, horizon: float) -> List[float]:
        """All arrival times in ``(0, horizon]`` — convenience for tests."""
        times: List[float] = []
        t = 0.0
        while True:
            nxt = self.next_arrival(t)
            if nxt is None or nxt > horizon:
                break
            times.append(nxt)
            t = nxt
        return times


class FixedArrival(ArrivalProcess):
    """Deterministic arrivals every ``interval`` time steps.

    The paper's simplest pattern: one flow every 10 time steps per ingress.

    Args:
        interval: Spacing between consecutive arrivals (> 0).
        offset: Time of the first arrival (defaults to ``interval``).
    """

    def __init__(self, interval: float = 10.0, offset: Optional[float] = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self.offset = interval if offset is None else offset

    def next_arrival(self, after: float) -> Optional[float]:
        if after < self.offset:
            return self.offset
        # Smallest offset + k*interval strictly greater than `after`.
        k = math.floor((after - self.offset) / self.interval) + 1
        candidate = self.offset + k * self.interval
        while candidate <= after:
            # Float rounding can land exactly on (or before) `after` for
            # tiny intervals at large times; force strict progress so
            # callers iterating arrivals can never loop in place.
            k += 1
            candidate = self.offset + k * self.interval
        return candidate


class PoissonArrival(ArrivalProcess):
    """Poisson arrivals: i.i.d. exponential inter-arrival times.

    Args:
        mean_interval: Mean inter-arrival time (paper: 10 time steps).
        rng: Numpy random generator (or seed) for reproducibility.
    """

    def __init__(self, mean_interval: float = 10.0, rng=None) -> None:
        if mean_interval <= 0:
            raise ValueError(f"mean_interval must be > 0, got {mean_interval}")
        self.mean_interval = mean_interval
        self._rng = np.random.default_rng(rng)
        self._next: float = 0.0
        self._advance()

    def _advance(self) -> None:
        self._next += self._rng.exponential(self.mean_interval)

    def next_arrival(self, after: float) -> Optional[float]:
        while self._next <= after:
            self._advance()
        return self._next


class MMPPArrival(ArrivalProcess):
    """Markov-modulated Poisson process with two states.

    A background two-state Markov chain is evaluated every
    ``switch_interval`` time steps; with probability ``switch_probability``
    it toggles between a *slow* state (mean inter-arrival
    ``mean_interval_slow``) and a *fast* state (``mean_interval_fast``).
    The paper uses mean inter-arrivals 12 and 8 with a 5 % switch chance
    every 100 time steps.

    Args:
        mean_interval_slow: Mean inter-arrival time in the slow state.
        mean_interval_fast: Mean inter-arrival time in the fast state.
        switch_interval: How often the chain considers switching.
        switch_probability: Per-consideration switch probability.
        rng: Numpy random generator (or seed).
    """

    def __init__(
        self,
        mean_interval_slow: float = 12.0,
        mean_interval_fast: float = 8.0,
        switch_interval: float = 100.0,
        switch_probability: float = 0.05,
        rng=None,
    ) -> None:
        for label, value in (
            ("mean_interval_slow", mean_interval_slow),
            ("mean_interval_fast", mean_interval_fast),
            ("switch_interval", switch_interval),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be > 0, got {value}")
        if not 0.0 <= switch_probability <= 1.0:
            raise ValueError(
                f"switch_probability must be in [0, 1], got {switch_probability}"
            )
        self.mean_interval_slow = mean_interval_slow
        self.mean_interval_fast = mean_interval_fast
        self.switch_interval = switch_interval
        self.switch_probability = switch_probability
        self._rng = np.random.default_rng(rng)
        self._fast = False
        self._next_switch_check = switch_interval
        self._next = 0.0
        self._advance()

    @property
    def current_mean_interval(self) -> float:
        return self.mean_interval_fast if self._fast else self.mean_interval_slow

    def _advance(self) -> None:
        # Advance the modulating chain up to the tentative next arrival:
        # switching changes the rate of the *subsequent* exponential draw.
        candidate = self._next + self._rng.exponential(self.current_mean_interval)
        while self._next_switch_check <= candidate:
            if self._rng.random() < self.switch_probability:
                self._fast = not self._fast
                # Redraw the residual inter-arrival at the new rate from the
                # switch point (memorylessness of the exponential).
                candidate = self._next_switch_check + self._rng.exponential(
                    self.current_mean_interval
                )
            self._next_switch_check += self.switch_interval
        self._next = candidate

    def next_arrival(self, after: float) -> Optional[float]:
        while self._next <= after:
            self._advance()
        return self._next


class RateFunctionArrival(ArrivalProcess):
    """Non-homogeneous Poisson arrivals driven by a rate function ``λ(t)``.

    Uses thinning (Lewis & Shedler): candidate arrivals are drawn at the
    supplied ``max_rate`` and accepted with probability ``λ(t)/max_rate``.
    This is the engine behind trace-driven traffic
    (:mod:`repro.traffic.traces` supplies the rate function).

    Args:
        rate_fn: Instantaneous arrival rate at time ``t`` (flows per time
            unit); must satisfy ``0 <= rate_fn(t) <= max_rate``.
        max_rate: Upper bound on ``rate_fn`` (> 0).
        rng: Numpy random generator (or seed).
        horizon: Optional time after which no more arrivals are produced.
    """

    def __init__(
        self,
        rate_fn: Callable[[float], float],
        max_rate: float,
        rng=None,
        horizon: Optional[float] = None,
    ) -> None:
        if max_rate <= 0:
            raise ValueError(f"max_rate must be > 0, got {max_rate}")
        self.rate_fn = rate_fn
        self.max_rate = max_rate
        self.horizon = horizon
        self._rng = np.random.default_rng(rng)

    def next_arrival(self, after: float) -> Optional[float]:
        t = after
        while True:
            t += self._rng.exponential(1.0 / self.max_rate)
            if self.horizon is not None and t > self.horizon:
                return None
            rate = self.rate_fn(t)
            if rate < 0 or rate > self.max_rate * (1 + 1e-9):
                raise ValueError(
                    f"rate_fn({t}) = {rate} outside [0, max_rate={self.max_rate}]"
                )
            if self._rng.random() < rate / self.max_rate:
                return t


@dataclass(frozen=True)
class FlowTemplate:
    """Attributes shared by all flows of one ingress (everything but timing)."""

    service: str
    egress: str
    data_rate: float = 1.0
    duration: float = 1.0
    deadline: float = 100.0

    def spec_at(self, ingress: str, arrival_time: float) -> FlowSpec:
        return FlowSpec(
            service=self.service,
            ingress=ingress,
            egress=self.egress,
            data_rate=self.data_rate,
            arrival_time=arrival_time,
            duration=self.duration,
            deadline=self.deadline,
        )


class TrafficSource:
    """Merges per-ingress arrival processes into one time-ordered flow stream.

    Args:
        processes: Mapping from ingress node name to its arrival process.
        template: Flow attributes; either one shared
            :class:`FlowTemplate` or a per-ingress mapping.
    """

    def __init__(
        self,
        processes: Dict[str, ArrivalProcess],
        template,
    ) -> None:
        if not processes:
            raise ValueError("TrafficSource needs at least one ingress process")
        self._processes = dict(processes)
        if isinstance(template, FlowTemplate):
            self._templates = {ingress: template for ingress in processes}
        else:
            missing = set(processes) - set(template)
            if missing:
                raise ValueError(f"missing templates for ingresses: {sorted(missing)}")
            self._templates = dict(template)

    def flows_until(self, horizon: float) -> Iterator[FlowSpec]:
        """Yield all flows with ``arrival_time <= horizon`` in time order.

        Lazy merge over the per-ingress processes with a heap, so very long
        horizons do not require materialising all arrivals up front.
        """
        heap: List[Tuple[float, str]] = []
        for ingress, proc in self._processes.items():
            first = proc.next_arrival(0.0)
            if first is not None and first <= horizon:
                heapq.heappush(heap, (first, ingress))
        while heap:
            time, ingress = heapq.heappop(heap)
            yield self._templates[ingress].spec_at(ingress, time)
            nxt = self._processes[ingress].next_arrival(time)
            if nxt is not None and nxt <= horizon:
                heapq.heappush(heap, (nxt, ingress))
