"""Trace-driven traffic.

The paper's Fig. 6d and Fig. 8a drive the simulation with real-world
traffic traces for the Abilene network (SNDlib [52]).  Those traces are not
redistributable in this offline environment, so this module provides:

1. :func:`synthetic_abilene_trace` — a deterministic synthetic trace with
   the qualitative structure of measured backbone demand: a diurnal
   (sinusoidal) base load, slow random drift, and short demand bursts.
   What matters for the experiments is *non-stationarity and burstiness* —
   traffic that no single fixed rule set fits — and the synthetic trace
   preserves exactly that (see DESIGN.md, "Substitutions").
2. :class:`TraceArrival` — an arrival process replaying any rate trace
   (synthetic or loaded from disk) through non-homogeneous Poisson
   thinning.
3. :func:`save_trace` / :func:`load_trace` — a tiny CSV format
   (``time,rate`` rows) so users can plug in real SNDlib-derived traces.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.traffic.arrival import ArrivalProcess, RateFunctionArrival

__all__ = [
    "RateTrace",
    "synthetic_abilene_trace",
    "TraceArrival",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True)
class RateTrace:
    """A piecewise-constant arrival-rate trace.

    Attributes:
        times: Strictly increasing sample times; ``rates[i]`` applies on
            ``[times[i], times[i+1])`` and ``rates[-1]`` from ``times[-1]``
            onward.  Before ``times[0]`` the rate is ``rates[0]``.
        rates: Non-negative arrival rates (flows per time unit).
    """

    times: Tuple[float, ...]
    rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.rates) or not self.times:
            raise ValueError("times and rates must be equal-length and non-empty")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("times must be strictly increasing")
        if any(r < 0 for r in self.rates):
            raise ValueError("rates must be >= 0")

    def rate_at(self, t: float) -> float:
        """Rate in effect at time ``t`` (piecewise-constant interpolation)."""
        if t <= self.times[0]:
            return self.rates[0]
        # Binary search for the last sample time <= t.
        lo, hi = 0, len(self.times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.times[mid] <= t:
                lo = mid
            else:
                hi = mid - 1
        return self.rates[lo]

    @property
    def max_rate(self) -> float:
        return max(self.rates)

    @property
    def mean_rate(self) -> float:
        """Time-weighted mean rate over the trace's sampled span."""
        if len(self.times) == 1:
            return self.rates[0]
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.rates[i] * (self.times[i + 1] - self.times[i])
        return total / (self.times[-1] - self.times[0])


def synthetic_abilene_trace(
    horizon: float = 20000.0,
    mean_rate: float = 0.1,
    sample_interval: float = 50.0,
    diurnal_period: float = 4000.0,
    diurnal_amplitude: float = 0.5,
    burst_probability: float = 0.05,
    burst_multiplier: float = 2.5,
    noise_std: float = 0.1,
    seed: int = 0,
) -> RateTrace:
    """Deterministic synthetic trace shaped like measured backbone demand.

    The rate at sample ``i`` is::

        rate_i = mean_rate * (1 + diurnal_amplitude * sin(2π t_i / period))
                           * burst_i * (1 + noise_i)

    where ``burst_i`` is ``burst_multiplier`` with probability
    ``burst_probability`` (demand spikes) and 1 otherwise, and ``noise_i``
    is zero-mean Gaussian measurement noise.  Rates are clipped at 0.

    Defaults give a mean inter-arrival time of ~10 time steps per ingress,
    matching the load level of the paper's other traffic patterns.
    """
    if horizon <= 0 or sample_interval <= 0:
        raise ValueError("horizon and sample_interval must be > 0")
    rng = np.random.default_rng(seed)
    times: List[float] = []
    rates: List[float] = []
    t = 0.0
    while t <= horizon:
        diurnal = 1.0 + diurnal_amplitude * math.sin(2 * math.pi * t / diurnal_period)
        burst = burst_multiplier if rng.random() < burst_probability else 1.0
        noise = 1.0 + rng.normal(0.0, noise_std)
        rates.append(max(0.0, mean_rate * diurnal * burst * noise))
        times.append(t)
        t += sample_interval
    return RateTrace(tuple(times), tuple(rates))


class TraceArrival(ArrivalProcess):
    """Arrival process replaying a :class:`RateTrace`.

    Thin wrapper over :class:`~repro.traffic.arrival.RateFunctionArrival`
    with the trace's piecewise-constant rate as the intensity function.

    Args:
        trace: The rate trace to replay.
        rng: Numpy random generator (or seed) for the thinning draws.
        horizon: Optional hard stop; defaults to unbounded (the trace's
            last rate extends forever).
    """

    def __init__(self, trace: RateTrace, rng=None, horizon: Optional[float] = None) -> None:
        self.trace = trace
        max_rate = trace.max_rate
        if max_rate <= 0:
            raise ValueError("trace has zero rate everywhere; no arrivals possible")
        self._inner = RateFunctionArrival(
            trace.rate_at, max_rate=max_rate, rng=rng, horizon=horizon
        )

    def next_arrival(self, after: float) -> Optional[float]:
        return self._inner.next_arrival(after)


def save_trace(trace: RateTrace, path) -> None:
    """Write a trace as ``time,rate`` CSV (with header)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "rate"])
        for t, r in zip(trace.times, trace.rates):
            writer.writerow([f"{t:.6f}", f"{r:.6f}"])


def load_trace(path) -> RateTrace:
    """Read a trace written by :func:`save_trace` (or any time,rate CSV)."""
    path = Path(path)
    times: List[float] = []
    rates: List[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty trace file")
        for row in reader:
            if len(row) != 2:
                raise ValueError(f"{path}: expected 'time,rate' rows, got {row!r}")
            times.append(float(row[0]))
            rates.append(float(row[1]))
    return RateTrace(tuple(times), tuple(rates))
