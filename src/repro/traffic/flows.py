"""Flow model.

A flow (Sec. III-A) is defined by
``f = (s_f, c_f, v_in, v_eg, λ_f, t_in, δ_f, τ_f)``: its requested service
and the component it currently requests, its ingress/egress nodes, data
rate, arrival time, duration, and deadline.  The *mutable* progress of the
flow through the network (current node, current component index, delay
accumulated so far) is tracked here too, because the flow object is the
unit that moves through the simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.services.service import Service

__all__ = ["Flow", "FlowStatus", "FlowSpec"]


class FlowStatus(Enum):
    """Lifecycle state of a flow inside the simulator."""

    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    DROPPED = "dropped"


@dataclass(frozen=True)
class FlowSpec:
    """Immutable description of a flow as produced by a traffic source.

    Attributes:
        service: Name of the requested service ``s_f``.
        ingress: Arrival node ``v^in_f``.
        egress: Destination node ``v^eg_f``.
        data_rate: ``λ_f`` — the rate traversed links carry and instances
            process (instances may in principle change it; the base model
            keeps it constant).
        arrival_time: ``t^in_f``.
        duration: ``δ_f`` — temporal length of the flow (fluid model: the
            tail arrives ``δ_f`` after the head).
        deadline: ``τ_f`` — maximum acceptable end-to-end delay, relative
            to the arrival time.
    """

    service: str
    ingress: str
    egress: str
    data_rate: float = 1.0
    arrival_time: float = 0.0
    duration: float = 1.0
    deadline: float = 100.0

    def __post_init__(self) -> None:
        if self.data_rate <= 0:
            raise ValueError(f"flow data_rate must be > 0, got {self.data_rate}")
        if self.duration <= 0:
            raise ValueError(f"flow duration must be > 0, got {self.duration}")
        if self.deadline <= 0:
            raise ValueError(f"flow deadline must be > 0, got {self.deadline}")
        if self.arrival_time < 0:
            raise ValueError(f"flow arrival_time must be >= 0, got {self.arrival_time}")


class Flow:
    """A flow moving through the network.

    Combines the immutable :class:`FlowSpec` with mutable progress state:
    the node currently holding the flow's head, the index of the component
    the flow requests next (``c_f``; ``None`` once fully processed), and
    bookkeeping for metrics (hops taken, instances traversed).

    Flow identity: every flow gets a unique integer ``flow_id`` from a
    process-wide counter, so flows are hashable and usable as dict keys in
    the simulator state.

    ``service_obj`` optionally caches the resolved :class:`Service` the
    flow requests — the simulator passes it at injection so per-decision
    hot paths skip the catalog lookup — and ``demands`` caches the
    per-component resource demand ``r_c(λ_f)`` for this flow's (constant)
    data rate.  Both stay None for hand-built flows; consumers must fall
    back to the catalog then.
    """

    __slots__ = (
        "flow_id", "spec", "chain_length", "component_index", "current_node",
        "status", "finish_time", "drop_reason", "hops", "instances_traversed",
        "service_obj", "demands",
    )

    _ids = itertools.count()

    def __init__(
        self,
        spec: FlowSpec,
        chain_length: int,
        service: Optional["Service"] = None,
    ) -> None:
        if chain_length < 1:
            raise ValueError("chain_length must be >= 1")
        self.flow_id: int = next(Flow._ids)
        self.spec = spec
        self.chain_length = chain_length
        #: Resolved service chain (see class docstring); None if not given.
        self.service_obj: Optional["Service"] = service
        #: Per-component resource demand for this flow's data rate
        #: (``r_c(λ_f)`` is pure in λ_f, so it can be computed once).
        self.demands: Optional[Tuple[float, ...]] = (
            tuple(c.resources(spec.data_rate) for c in service.components)
            if service is not None
            else None
        )
        #: Index into the service chain of the component the flow requests
        #: next; ``None`` means fully processed (``c_f = ∅``).
        self.component_index: Optional[int] = 0
        #: Node currently holding the flow's head.
        self.current_node: str = spec.ingress
        self.status: FlowStatus = FlowStatus.ACTIVE
        #: Simulation time at which the flow finished (success or drop).
        self.finish_time: Optional[float] = None
        #: Why the flow was dropped (None while active / on success).
        self.drop_reason: Optional[str] = None
        #: Number of link traversals so far.
        self.hops: int = 0
        #: Number of component instances traversed so far.
        self.instances_traversed: int = 0

    # -- convenient passthroughs ----------------------------------------

    @property
    def service(self) -> str:
        return self.spec.service

    @property
    def egress(self) -> str:
        return self.spec.egress

    @property
    def data_rate(self) -> float:
        return self.spec.data_rate

    @property
    def duration(self) -> float:
        return self.spec.duration

    @property
    def deadline(self) -> float:
        return self.spec.deadline

    @property
    def arrival_time(self) -> float:
        return self.spec.arrival_time

    # -- progress --------------------------------------------------------

    @property
    def fully_processed(self) -> bool:
        """True once the flow traversed the last component (``c_f = ∅``)."""
        return self.component_index is None

    @property
    def progress(self) -> float:
        """Chain progress ``p̂_f ∈ [0, 1]`` (observation F_f)."""
        if self.component_index is None:
            return 1.0
        return self.component_index / self.chain_length

    def advance_component(self) -> None:
        """Mark the current component as traversed, moving to the next one."""
        if self.component_index is None:
            raise RuntimeError(f"flow {self.flow_id} is already fully processed")
        self.instances_traversed += 1
        nxt = self.component_index + 1
        self.component_index = nxt if nxt < self.chain_length else None

    def remaining_time(self, now: float) -> float:
        """``τ^t_f`` — time left until the deadline (may be negative)."""
        return self.deadline - (now - self.arrival_time)

    def normalized_remaining_time(self, now: float) -> float:
        """``τ̂_f = τ^t_f / τ_f ∈ [0, 1]`` (observation F_f), clipped at 0."""
        return max(0.0, self.remaining_time(now) / self.deadline)

    def expired(self, now: float) -> bool:
        """True once ``τ^t_f <= 0`` — the flow missed its deadline."""
        return self.remaining_time(now) <= 0.0

    def end_to_end_delay(self) -> Optional[float]:
        """``d_f = t^out_f - t^in_f`` once finished; None while active."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def mark_succeeded(self, now: float) -> None:
        if self.status is not FlowStatus.ACTIVE:
            raise RuntimeError(f"flow {self.flow_id} already finished ({self.status})")
        self.status = FlowStatus.SUCCEEDED
        self.finish_time = now

    def mark_dropped(self, now: float, reason: str) -> None:
        if self.status is not FlowStatus.ACTIVE:
            raise RuntimeError(f"flow {self.flow_id} already finished ({self.status})")
        self.status = FlowStatus.DROPPED
        self.finish_time = now
        self.drop_reason = reason

    def __hash__(self) -> int:
        return self.flow_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Flow) and other.flow_id == self.flow_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow(id={self.flow_id}, service={self.service!r}, "
            f"at={self.current_node!r}, component={self.component_index}, "
            f"status={self.status.value})"
        )
