"""Render a human-readable report from a telemetry run directory.

``repro telemetry summarize <dir>`` loads the run's manifest and JSONL
stream, validates every record against the schema, and prints a compact
report: record counts per kind, the training trajectory (loss, entropy,
predicted KL), simulation outcomes (success ratio, drop reasons, delay
summary), evaluation aggregates, and per-phase/batch wall-clock.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.manifest import (
    STREAM_FILENAME,
    RunManifest,
    read_manifest,
)
from repro.telemetry.schema import SchemaError, validate_record

__all__ = ["load_stream", "summarize_run"]


def load_stream(path: os.PathLike, validate: bool = True) -> List[Dict[str, Any]]:
    """Load a JSONL stream; validates every record by default.

    Raises:
        SchemaError: A line is not valid JSON or fails schema validation
            (the error names the 1-based line number).
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
            if validate:
                try:
                    validate_record(record)
                except SchemaError as exc:
                    raise SchemaError(f"{path}:{lineno}: {exc}") from exc
            records.append(record)
    return records


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def _fmt(value: Optional[float], spec: str = ".3f") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    return format(value, spec)


def _training_lines(updates: List[Dict[str, Any]]) -> List[str]:
    first, last = updates[0], updates[-1]
    lines = [
        f"training: {len(updates)} updates | "
        f"pi_loss {first['policy_loss']:.4f} -> {last['policy_loss']:.4f} | "
        f"v_loss {first['value_loss']:.4f} -> {last['value_loss']:.4f} | "
        f"entropy {first['entropy']:.3f} -> {last['entropy']:.3f}"
    ]
    kls = [r["kl"] for r in updates if isinstance(r.get("kl"), float)]
    if kls:
        lines.append(
            f"  trust region: predicted KL mean {_mean(kls):.2e} "
            f"max {max(kls):.2e}"
        )
    walls = [r["wall_seconds"] for r in updates if "wall_seconds" in r]
    if walls:
        lines.append(
            f"  update wall-clock: total {sum(walls):.2f}s "
            f"mean {_mean(walls) * 1000.0:.1f}ms"
        )
    return lines


def _sim_lines(runs: List[Dict[str, Any]]) -> List[str]:
    ratios = [float(r["success_ratio"]) for r in runs]
    drops: Dict[str, int] = {}
    for r in runs:
        for reason, count in r["drop_reasons"].items():
            drops[reason] = drops.get(reason, 0) + int(count)
    lines = [
        f"simulation: {len(runs)} runs | success {_mean(ratios):.3f} "
        f"(min {min(ratios):.3f} max {max(ratios):.3f}) | "
        f"flows {sum(int(r['flows_generated']) for r in runs)} "
        f"(+{sum(int(r['flows_succeeded']) for r in runs)} "
        f"-{sum(int(r['flows_dropped']) for r in runs)} "
        f"~{sum(int(r['flows_active']) for r in runs)} in flight)"
    ]
    if drops:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(drops.items()))
        lines.append(f"  drops: {rendered}")
    delays = [r["delay"] for r in runs if isinstance(r.get("delay"), dict)]
    if delays:
        p50 = _mean([d["p50"] for d in delays if "p50" in d])
        p95 = _mean([d["p95"] for d in delays if "p95" in d])
        dmax = max((d.get("max", float("-inf")) for d in delays), default=None)
        lines.append(
            f"  delay (successful flows): p50 {_fmt(p50, '.2f')} "
            f"p95 {_fmt(p95, '.2f')} max {_fmt(dmax, '.2f')}"
        )
    return lines


def _train_phase_lines(records: List[Dict[str, Any]]) -> List[str]:
    from repro.profiling import OPTIMIZER_SUBPHASE_NAMES, PHASE_NAMES

    totals = {
        name: sum(float(r.get(name, 0.0)) for r in records)
        for name in PHASE_NAMES
    }
    updates = sum(int(r["updates"]) for r in records)
    total = sum(totals.values())
    if total > 0.0:
        rendered = " ".join(
            f"{name}={seconds:.2f}s ({100.0 * seconds / total:.0f}%)"
            for name, seconds in totals.items()
        )
    else:
        rendered = " ".join(f"{name}=0.00s" for name in totals)
    lines = [f"train phases: {updates} updates | {rendered}"]
    subtotals = {
        name: sum(float(r.get(name, 0.0)) for r in records)
        for name in OPTIMIZER_SUBPHASE_NAMES
    }
    if any(subtotals.values()):
        skips = sum(int(r.get("stat_skips", 0)) for r in records)
        rendered = " ".join(
            f"{name}={seconds:.2f}s" for name, seconds in subtotals.items()
        )
        suffix = f" | stat skips {skips}" if skips else ""
        lines.append(f"  optimizer busy: {rendered}{suffix}")
    return lines


def summarize_run(directory: os.PathLike) -> str:
    """Validate and render one run directory's report.

    Raises:
        FileNotFoundError: Missing manifest or stream file.
        SchemaError: The stream contains a malformed record.
    """
    directory = Path(directory)
    manifest: Optional[RunManifest]
    try:
        manifest = read_manifest(directory)
    except FileNotFoundError:
        manifest = None
    stream = directory / STREAM_FILENAME
    records = load_stream(stream)

    lines = [f"== Telemetry run: {directory} =="]
    if manifest is not None:
        lines.append(
            f"manifest: name={manifest.name} created={manifest.created} "
            f"seeds={list(manifest.seeds)} repro={manifest.package_version} "
            f"schema=v{manifest.schema_version}"
        )
        if manifest.config:
            knobs = ", ".join(
                f"{k}={v}" for k, v in sorted(manifest.config.items())
            )
            lines.append(f"config: {knobs}")
    else:
        lines.append("manifest: (missing)")

    counts: Dict[str, int] = {}
    for record in records:
        counts[record["kind"]] = counts.get(record["kind"], 0) + 1
    rendered_counts = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    lines.append(f"records: {len(records)} ({rendered_counts or 'empty'})")

    by_kind: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        by_kind.setdefault(record["kind"], []).append(record)

    if "train_update" in by_kind:
        lines.extend(_training_lines(by_kind["train_update"]))
    for result in by_kind.get("seed_result", []):
        lines.append(
            f"seed {result['seed']}: eval_reward "
            f"{result['mean_episode_reward']:.2f} "
            f"episodes={result['episodes']}"
        )
    for summary in by_kind.get("train_summary", []):
        lines.append(
            f"best agent: seed {summary['best_seed']} of "
            f"{summary['seeds']} ({summary['algorithm']})"
        )
    if "sim_run" in by_kind:
        lines.extend(_sim_lines(by_kind["sim_run"]))
    for agg in by_kind.get("eval_aggregate", []):
        excluded = int(agg["delay_seeds_excluded"])
        suffix = f" ({excluded} seed(s) excluded from delay)" if excluded else ""
        lines.append(
            f"evaluation[{agg['name']}]: {agg['seeds']} seeds | "
            f"success {_fmt(float(agg['mean_success']))} | "
            f"delay {_fmt(float(agg['mean_delay']), '.1f')}{suffix}"
        )
    evals = by_kind.get("eval_batch", [])
    if evals:
        total_decisions = sum(int(r["decisions"]) for r in evals)
        total_rounds = sum(int(r["rounds"]) for r in evals)
        fallbacks = sum(int(r.get("tie_fallbacks", 0)) for r in evals)
        batches = sorted({int(r["batch"]) for r in evals})
        mean_round = total_decisions / total_rounds if total_rounds else 0.0
        forward = sum(
            float(r["forward_seconds"]) for r in evals if "forward_seconds" in r
        )
        rate = [
            float(r["decisions_per_second"])
            for r in evals
            if "decisions_per_second" in r
        ]
        lines.append(
            f"batched eval: {len(evals)} run(s) batch={batches} | "
            f"{total_decisions} decisions in {total_rounds} rounds "
            f"(mean {mean_round:.1f}/round, {fallbacks} tie fallbacks) | "
            f"forward {forward:.2f}s"
            + (f" | {_mean(rate):.0f} decisions/s" if rate else "")
        )
    serving = by_kind.get("serving", [])
    if serving:
        requests = sum(int(r["requests"]) for r in serving)
        served = sum(int(r["served"]) for r in serving)
        shed = sum(int(r["shed"]) for r in serving)
        flushes = sum(int(r["flushes"]) for r in serving)
        mean_batch = served / flushes if flushes else 0.0
        rates = [
            float(r["decisions_per_second"])
            for r in serving
            if "decisions_per_second" in r
        ]
        swaps = sum(int(r.get("swaps", 0)) for r in serving)
        lines.append(
            f"serving: {len(serving)} run(s) | {requests} requests "
            f"({served} served, {shed} shed) | {flushes} flushes "
            f"mean batch {mean_batch:.1f}"
            + (f" | {_mean(rates):.0f} decisions/s" if rates else "")
            + (f" | {swaps} hot-swaps" if swaps else "")
        )
        p99s = [
            float(r["latency_p99_ms"]) for r in serving if "latency_p99_ms" in r
        ]
        if p99s:
            p50s = [
                float(r["latency_p50_ms"])
                for r in serving
                if "latency_p50_ms" in r
            ]
            lines.append(
                f"  latency: p50 {_fmt(_mean(p50s), '.2f')}ms "
                f"p99 {_fmt(_mean(p99s), '.2f')}ms (worst run "
                f"p99 {max(p99s):.2f}ms)"
            )
    for batch in by_kind.get("batch_timing", []):
        lines.append(
            f"batch {batch['name']}: {batch['mode']} "
            f"workers={batch['workers']} {batch['total_seconds']:.2f}s"
        )
    phase_totals: Dict[str, float] = {}
    for phase in by_kind.get("phase", []):
        phase_totals[phase["name"]] = (
            phase_totals.get(phase["name"], 0.0) + float(phase["seconds"])
        )
    if phase_totals:
        rendered = " ".join(f"{k}={v:.2f}s" for k, v in phase_totals.items())
        lines.append(f"phases: {rendered}")
    if "train_phases" in by_kind:
        lines.extend(_train_phase_lines(by_kind["train_phases"]))
    return "\n".join(lines)
