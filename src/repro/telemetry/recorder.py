"""Structured run telemetry: a dependency-free JSONL metric recorder.

Two implementations of one tiny interface:

- :data:`NULL_RECORDER` — the default everywhere.  ``emit`` is a no-op
  and ``enabled`` is False, so instrumented hot paths pay one attribute
  check when telemetry is off (call sites guard dict construction with
  ``if recorder.enabled``).
- :class:`JsonlRecorder` — appends one JSON object per ``emit`` to a
  ``.jsonl`` file, creating parent directories lazily on first write.

Worker processes
----------------

A :class:`JsonlRecorder` pickles (the open file handle is dropped and
reopened lazily), but concurrent workers appending to one shared file
would interleave records nondeterministically.  The contract instead:
the parent derives one *worker-local* recorder per task with
:meth:`JsonlRecorder.for_task` (a deterministic sibling path), ships it
inside the task object, and after the batch completes merges each
worker file back into its own stream — in task order — with
:meth:`JsonlRecorder.absorb`.  The merged stream is therefore identical
for serial and parallel execution (modulo wall-clock values; see
:func:`repro.telemetry.schema.canonical_stream`).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import IO, Any, Dict, Optional

__all__ = ["Recorder", "NullRecorder", "NULL_RECORDER", "JsonlRecorder"]


def _coerce(value: Any) -> Any:
    """JSON-encode numpy scalars/arrays without importing numpy."""
    for attr in ("item",):  # numpy scalars and 0-d arrays
        if hasattr(value, attr):
            return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {value!r} ({type(value).__name__})")


class Recorder:
    """Telemetry sink interface (no-op base).

    Attributes:
        enabled: True when ``emit`` actually records something; hot
            paths skip building record fields when False.
    """

    enabled: bool = False

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event of ``kind`` with the given fields."""

    def for_task(self, label: str) -> "Recorder":
        """A worker-local recorder for one parallel task (see module doc)."""
        return self

    def absorb(self, child: "Recorder") -> None:
        """Merge a worker-local child stream into this one and delete it."""

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class NullRecorder(Recorder):
    """Disabled telemetry: every operation is a no-op."""


#: Shared disabled recorder; use as the default for ``recorder`` params.
NULL_RECORDER = NullRecorder()


def _slug(label: str) -> str:
    """Filesystem-safe task label (deterministic across processes)."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-") or "task"


class JsonlRecorder(Recorder):
    """Appends one JSON object per event to a ``.jsonl`` stream.

    Args:
        path: Stream file; parent directories are created on first emit.
        validate: Validate each record against the schema at emit time
            (cheap; on by default so malformed records fail at the
            source instead of at summarize time).
    """

    enabled = True

    def __init__(self, path: os.PathLike, validate: bool = True) -> None:
        self.path = Path(path)
        self.validate = validate
        self._fh: Optional[IO[str]] = None

    # -- pickling: recorders travel inside parallel task objects --------

    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path, "validate": self.validate}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.validate = state["validate"]
        self._fh = None

    # -------------------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        record = {"kind": kind, **fields}
        if self.validate:
            from repro.telemetry.schema import validate_record

            validate_record(record)
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, default=_coerce) + "\n")

    def for_task(self, label: str) -> "JsonlRecorder":
        """Worker-local sibling stream ``<stem>.<label>.jsonl``.

        The path depends only on this recorder's path and the task
        label, so the parent (which derives it) and the worker (which
        writes it) agree without communicating.
        """
        sibling = self.path.with_name(f"{self.path.stem}.{_slug(label)}.jsonl")
        return JsonlRecorder(sibling, validate=self.validate)

    def absorb(self, child: Recorder) -> None:
        """Append a finished child stream's records here, then delete it.

        Tolerates a child that never emitted (no file).  Records are
        copied verbatim (already validated at emit time in the worker).
        """
        if not isinstance(child, JsonlRecorder) or child.path == self.path:
            return
        child.close()
        try:
            text = child.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        if text:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(text)
        child.path.unlink()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
