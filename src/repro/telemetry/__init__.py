"""Structured run telemetry: JSONL metric streams + run manifests.

Runs of the training loop, the simulator, and the evaluation harness
are black boxes without instrumentation: per-update losses, entropy,
trust-region KL, per-run flow outcomes, and fan-out timing vanish
unless they surface in a final table.  This package records them as a
validated JSONL stream next to a run manifest, at zero overhead when
disabled:

- :mod:`repro.telemetry.recorder` — :data:`NULL_RECORDER` (no-op
  default) and :class:`JsonlRecorder` (picklable; worker-local streams
  merge deterministically into the parent's).
- :mod:`repro.telemetry.schema` — the closed record schema, validation,
  and the timing-stripped canonical view used by determinism checks.
- :mod:`repro.telemetry.manifest` — run directories: ``manifest.json``
  (config, seeds, package version, timestamp) + ``metrics.jsonl``.
- :mod:`repro.telemetry.phases` — named wall-clock phase accumulation
  for benchmark JSON reports.
- :mod:`repro.telemetry.summarize` — ``repro telemetry summarize``:
  validate a stream and render a run report.
"""

from repro.telemetry.manifest import (
    MANIFEST_FILENAME,
    STREAM_FILENAME,
    RunManifest,
    TelemetryRun,
    read_manifest,
    start_run,
)
from repro.telemetry.phases import PhaseTimer
from repro.telemetry.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    NullRecorder,
    Recorder,
)
from repro.telemetry.schema import (
    RECORD_SCHEMAS,
    SCHEMA_VERSION,
    TIMING_FIELDS,
    TIMING_KINDS,
    SchemaError,
    canonical_stream,
    strip_timing,
    validate_record,
)
from repro.telemetry.summarize import load_stream, summarize_run

__all__ = [
    "MANIFEST_FILENAME",
    "NULL_RECORDER",
    "JsonlRecorder",
    "NullRecorder",
    "PhaseTimer",
    "RECORD_SCHEMAS",
    "Recorder",
    "RunManifest",
    "SCHEMA_VERSION",
    "STREAM_FILENAME",
    "SchemaError",
    "TIMING_FIELDS",
    "TIMING_KINDS",
    "TelemetryRun",
    "canonical_stream",
    "load_stream",
    "read_manifest",
    "start_run",
    "strip_timing",
    "summarize_run",
    "validate_record",
]
