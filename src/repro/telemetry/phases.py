"""Named wall-clock phases for benchmarks and multi-stage runs.

A :class:`PhaseTimer` accumulates how long each named phase of a run
took (re-entering a phase adds to its total), optionally emitting a
``phase`` telemetry record per measurement.  Benchmarks attach the
resulting breakdown to their JSON reports so the perf trajectory of
each stage (training vs evaluation vs comparison) is visible over time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Tuple

from repro.telemetry.recorder import NULL_RECORDER, Recorder

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates per-phase wall-clock totals.

    Usage::

        timer = PhaseTimer()
        with timer.phase("train"):
            ...
        with timer.phase("evaluate"):
            ...
        report["phases"] = timer.to_dict()
    """

    def __init__(self, recorder: Recorder = NULL_RECORDER) -> None:
        self.recorder = recorder
        self._totals: Dict[str, float] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; nested/repeated entries accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - start
            if name not in self._totals:
                self._totals[name] = 0.0
                self._order.append(name)
            self._totals[name] += seconds
            if self.recorder.enabled:
                self.recorder.emit("phase", name=name, seconds=seconds)

    @property
    def phases(self) -> List[Tuple[str, float]]:
        """(name, total seconds) in first-entry order."""
        return [(name, self._totals[name]) for name in self._order]

    @property
    def total_seconds(self) -> float:
        return sum(self._totals.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready per-phase breakdown for bench reports."""
        return {
            "phases": [
                {"name": name, "seconds": seconds} for name, seconds in self.phases
            ],
            "total_seconds": self.total_seconds,
        }

    def render(self) -> str:
        """One-line human-readable breakdown."""
        parts = [f"{name}={seconds:.2f}s" for name, seconds in self.phases]
        return "phases: " + (" ".join(parts) if parts else "(none)")
