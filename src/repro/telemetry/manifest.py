"""Run manifests: what produced a telemetry stream.

Every telemetry run directory pairs a ``manifest.json`` (who/what/when:
command name, config knobs, seeds, package version, schema version,
timestamp) with a ``metrics.jsonl`` stream.  :func:`start_run` creates
both and returns the run handle used by the CLI and tests.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.telemetry.recorder import JsonlRecorder
from repro.telemetry.schema import SCHEMA_VERSION

__all__ = [
    "MANIFEST_FILENAME",
    "STREAM_FILENAME",
    "RunManifest",
    "TelemetryRun",
    "start_run",
    "read_manifest",
]

MANIFEST_FILENAME = "manifest.json"
STREAM_FILENAME = "metrics.jsonl"


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one telemetry run.

    Attributes:
        name: What produced the run (e.g. ``"train"``, ``"compare"``).
        config: Flat JSON-able mapping of the run's knobs.
        seeds: The random seeds involved (training or evaluation).
        package_version: ``repro.__version__`` at run time.
        schema_version: Stream schema version (see
            :mod:`repro.telemetry.schema`).
        created: ISO-8601 UTC creation timestamp.
        created_unix: Same instant as a unix timestamp.
    """

    name: str
    config: Dict[str, Any] = field(default_factory=dict)
    seeds: Sequence[int] = ()
    package_version: str = ""
    schema_version: int = SCHEMA_VERSION
    created: str = ""
    created_unix: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "config": dict(self.config),
            "seeds": list(self.seeds),
            "package_version": self.package_version,
            "schema_version": self.schema_version,
            "created": self.created,
            "created_unix": self.created_unix,
        }


@dataclass
class TelemetryRun:
    """A run directory: manifest + live recorder for its metric stream."""

    directory: Path
    manifest: RunManifest
    recorder: JsonlRecorder

    @property
    def stream_path(self) -> Path:
        return self.recorder.path

    def close(self) -> None:
        self.recorder.close()

    def __enter__(self) -> "TelemetryRun":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _package_version() -> str:
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - defensive
        return "unknown"


def start_run(
    directory: os.PathLike,
    name: str,
    config: Optional[Dict[str, Any]] = None,
    seeds: Sequence[int] = (),
) -> TelemetryRun:
    """Create a telemetry run directory with a manifest and empty stream.

    Args:
        directory: Run directory (created if missing).  An existing
            ``metrics.jsonl`` in it is truncated so reruns into the same
            directory do not concatenate streams.
        name: Run name recorded in the manifest (e.g. the CLI command).
        config: JSON-able knobs to record (non-JSON values are
            stringified).
        seeds: Seeds the run will use.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = RunManifest(
        name=name,
        config=_jsonable(config or {}),
        seeds=list(seeds),
        package_version=_package_version(),
        schema_version=SCHEMA_VERSION,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        created_unix=time.time(),
    )
    (directory / MANIFEST_FILENAME).write_text(
        json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    stream = directory / STREAM_FILENAME
    if stream.exists():
        stream.unlink()
    return TelemetryRun(
        directory=directory,
        manifest=manifest,
        recorder=JsonlRecorder(stream),
    )


def read_manifest(directory: os.PathLike) -> RunManifest:
    """Load the manifest of a run directory.

    Raises:
        FileNotFoundError: No ``manifest.json`` in ``directory``.
        ValueError: The manifest is not valid JSON or misses fields.
    """
    path = Path(directory) / MANIFEST_FILENAME
    raw = json.loads(path.read_text(encoding="utf-8"))
    try:
        return RunManifest(
            name=raw["name"],
            config=raw.get("config", {}),
            seeds=raw.get("seeds", []),
            package_version=raw.get("package_version", ""),
            schema_version=raw.get("schema_version", 0),
            created=raw.get("created", ""),
            created_unix=raw.get("created_unix", 0.0),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed manifest {path}: {exc}") from exc


def _jsonable(config: Dict[str, Any]) -> Dict[str, Any]:
    """Round-trip config values through JSON, stringifying what fails."""
    out: Dict[str, Any] = {}
    for key, value in config.items():
        try:
            json.dumps(value)
            out[key] = value
        except TypeError:
            out[key] = str(value)
    return out
