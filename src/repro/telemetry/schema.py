"""Schema of the telemetry JSONL stream.

Every line of a ``metrics.jsonl`` stream is one JSON object with a
``kind`` field selecting one of the record schemas below.  The schema is
deliberately closed: :func:`validate_record` rejects unknown kinds and
missing/ill-typed required fields, so ``repro telemetry summarize`` can
guarantee that a stream it renders is well-formed.

Record kinds
------------

``train_update``
    One gradient update of a trainer: ``update`` (1-based index),
    ``policy_loss``, ``value_loss``, ``entropy``, ``mean_return``;
    optionally ``kl`` (ACKTR predicted trust-region KL), ``grad_norm``
    (actor gradient norm before clipping — for ACKTR the pre-clip norm
    recorded by the actor's K-FAC step),
    ``trust_scale_actor``/``trust_scale_critic`` (K-FAC step rescale),
    ``episodes`` (finished so far), ``seed``, ``algorithm``, and
    ``wall_seconds``.

``seed_result``
    One finished per-seed training run: ``seed``,
    ``mean_episode_reward``, ``episodes``; optionally ``algorithm``.

``train_summary``
    Best-agent selection over all seeds: ``algorithm``, ``seeds``
    (count), ``best_seed``; optionally ``best_reward``.

``sim_run``
    One finished simulation: flow counters (``flows_generated``,
    ``flows_succeeded``, ``flows_dropped``, ``flows_active``),
    ``success_ratio``, ``drop_reasons`` (reason -> count),
    ``decisions``, ``horizon``; optionally ``delay`` (histogram summary
    dict), ``fault_phases`` (per-phase success split of a fault-injected
    run: pre_failure / during_failure / post_recovery, each with
    succeeded/dropped/ratio), ``seed``, ``label``, ``wall_seconds``.

``fault_event``
    One applied fault transition of a fault-injected simulation:
    ``time``, ``fault`` (link_failure / node_outage /
    capacity_degradation), ``phase`` (onset / recovery), ``target``
    (node name or ``u-v`` link label), ``flows_dropped``,
    ``instances_evicted``.

``eval_aggregate``
    Cross-seed aggregation of one algorithm's evaluation: ``name``,
    ``seeds`` (count), ``mean_success``, ``mean_delay``,
    ``delay_seeds_excluded`` (seeds whose delay was NaN and therefore
    carried zero weight).

``task_timing`` / ``batch_timing``
    Wall-clock accounting of one parallel task / one fan-out batch
    (mirrors :class:`repro.parallel.timing.TimingReport`).

``eval_batch``
    One batched-evaluation run (:class:`repro.rl.batched.BatchedEpisodeRunner`):
    ``batch`` (configured lockstep width), ``episodes``, ``rounds``
    (lockstep rounds = policy forwards), ``decisions`` (total actions
    selected); optionally ``mean_round_batch``/``max_round_batch``,
    ``round_batches`` (per-round live-slot counts, truncated),
    ``tie_fallbacks`` (rows recomputed through the serial forward near
    argmax ties), ``deterministic``, ``dtype``, ``forward_seconds``
    (wall-clock inside policy forwards), ``wall_seconds``, and
    ``decisions_per_second``.

``phase``
    One named wall-clock phase (e.g. ``train`` vs ``evaluate`` in a
    benchmark): ``name``, ``seconds``.

``train_phases``
    Phase attribution of one training run (emitted by
    :meth:`repro.rl.a2c.A2CTrainer.train` when a
    :class:`repro.profiling.PhaseAccumulator` is attached): ``updates``
    plus wall-clock seconds per phase (``sim_advance``, ``obs_build``,
    ``policy_forward``, ``optimizer_update``); optionally ``seed`` and
    ``wall_seconds``.  ACKTR runs additionally carry the
    optimizer-update sub-phase split (``fisher_stats``, ``grad_pass``,
    ``inversion``, ``precondition`` — *busy* seconds per update thread,
    so their sum may exceed ``optimizer_update`` wall time when the
    actor/critic updates run concurrently) and ``stat_skips`` (updates
    that skipped the Fisher-statistics refresh under ``stat_interval``
    amortization).  Purely timing-valued, so determinism checks drop
    it entirely.

``serving``
    One serving-engine run (:class:`repro.serving.ServingEngine`):
    ``requests`` (submitted), ``served``, ``shed`` (rejected at the
    queue-depth cap), ``flushes``; optionally the engine configuration
    (``batch``, ``deadline_ms``, ``queue_capacity``, ``dtype``,
    ``deterministic``, ``rate``), flush-trigger split (``size_flushes``
    / ``deadline_flushes`` / ``forced_flushes``), ``batch_histogram``
    (batch size -> flush count) with ``mean_batch``/``max_batch``,
    ``max_queue_depth``, latency percentiles
    (``latency_p50_ms``/``latency_p95_ms``/``latency_p99_ms``/
    ``latency_max_ms``), ``max_flush_ms``, hot-swap accounting
    (``swaps``, ``policy_version``), ``tie_fallbacks``,
    ``forward_seconds``, ``wall_seconds``, and
    ``decisions_per_second``.  Latency-valued throughout, so
    determinism checks drop the kind entirely.

``note``
    Freeform annotation: ``message``.

Determinism
-----------

Wall-clock values vary between runs and worker counts, so equality
checks must ignore them.  :func:`strip_timing` removes the
:data:`TIMING_FIELDS` from one record; :func:`canonical_stream`
additionally drops the purely timing-valued record kinds
(:data:`TIMING_KINDS`).  Two runs of the same workload — serial or
fanned out across any number of workers — produce identical canonical
streams.
"""

from __future__ import annotations

import numbers
from typing import Any, Dict, Iterable, List, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "TIMING_FIELDS",
    "TIMING_KINDS",
    "RECORD_SCHEMAS",
    "SchemaError",
    "validate_record",
    "strip_timing",
    "canonical_stream",
]

#: Version stamped into every run manifest; bump on breaking changes.
SCHEMA_VERSION = 1

#: Fields holding wall-clock measurements; ignored by determinism checks.
TIMING_FIELDS = frozenset(
    {
        "wall_seconds",
        "seconds",
        "total_seconds",
        "serial_seconds",
        "speedup",
        "utilization",
        "forward_seconds",
        "decisions_per_second",
    }
)

#: Record kinds that carry only timing information (dropped entirely by
#: :func:`canonical_stream`; their non-timing fields — mode, workers —
#: legitimately differ between serial and parallel runs).
TIMING_KINDS = frozenset(
    {"task_timing", "batch_timing", "phase", "train_phases", "serving"}
)

_NUM = numbers.Real
_INT = numbers.Integral

#: kind -> {field: expected type or tuple of types} for *required* fields.
RECORD_SCHEMAS: Dict[str, Dict[str, Any]] = {
    "train_update": {
        "update": _INT,
        "policy_loss": _NUM,
        "value_loss": _NUM,
        "entropy": _NUM,
        "mean_return": _NUM,
    },
    "seed_result": {
        "seed": _INT,
        "mean_episode_reward": _NUM,
        "episodes": _INT,
    },
    "train_summary": {
        "algorithm": str,
        "seeds": _INT,
        "best_seed": _INT,
    },
    "sim_run": {
        "flows_generated": _INT,
        "flows_succeeded": _INT,
        "flows_dropped": _INT,
        "flows_active": _INT,
        "success_ratio": _NUM,
        "drop_reasons": Mapping,
        "decisions": _INT,
        "horizon": _NUM,
    },
    "fault_event": {
        "time": _NUM,
        "fault": str,
        "phase": str,
        "target": str,
        "flows_dropped": _INT,
        "instances_evicted": _INT,
    },
    "eval_aggregate": {
        "name": str,
        "seeds": _INT,
        "mean_success": _NUM,
        "mean_delay": _NUM,
        "delay_seeds_excluded": _INT,
    },
    "eval_batch": {
        "batch": _INT,
        "episodes": _INT,
        "rounds": _INT,
        "decisions": _INT,
    },
    "task_timing": {
        "label": str,
        "seconds": _NUM,
    },
    "batch_timing": {
        "name": str,
        "mode": str,
        "workers": _INT,
        "total_seconds": _NUM,
    },
    "phase": {
        "name": str,
        "seconds": _NUM,
    },
    "train_phases": {
        "updates": _INT,
        "sim_advance": _NUM,
        "obs_build": _NUM,
        "policy_forward": _NUM,
        "optimizer_update": _NUM,
    },
    "serving": {
        "requests": _INT,
        "served": _INT,
        "shed": _INT,
        "flushes": _INT,
    },
    "note": {
        "message": str,
    },
}


class SchemaError(ValueError):
    """A telemetry record does not match the documented schema."""


def validate_record(record: Any) -> str:
    """Check one decoded record against the schema; returns its kind.

    Raises:
        SchemaError: The record is not a dict, has no/unknown ``kind``,
            or a required field is missing or of the wrong type.
    """
    if not isinstance(record, Mapping):
        raise SchemaError(f"record is not an object: {record!r}")
    kind = record.get("kind")
    if not isinstance(kind, str):
        raise SchemaError(f"record has no string 'kind' field: {record!r}")
    required = RECORD_SCHEMAS.get(kind)
    if required is None:
        raise SchemaError(
            f"unknown record kind {kind!r}; known: {sorted(RECORD_SCHEMAS)}"
        )
    for name, expected in required.items():
        if name not in record:
            raise SchemaError(f"{kind} record missing required field {name!r}")
        value = record[name]
        # bool is an Integral subtype in python; reject it for numerics.
        if isinstance(value, bool) and expected in (_NUM, _INT):
            raise SchemaError(f"{kind}.{name} must be numeric, got bool")
        if not isinstance(value, expected):
            raise SchemaError(
                f"{kind}.{name} has type {type(value).__name__}, "
                f"expected {getattr(expected, '__name__', expected)}"
            )
    return kind


def strip_timing(record: Mapping[str, Any]) -> Dict[str, Any]:
    """One record without its wall-clock fields (for equality checks)."""
    return {k: v for k, v in record.items() if k not in TIMING_FIELDS}


def canonical_stream(
    records: Iterable[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """The determinism-comparable view of a stream.

    Drops purely-timing record kinds and strips timing fields from the
    rest; two runs of the same seeded workload yield equal canonical
    streams regardless of worker count.
    """
    return [
        strip_timing(r) for r in records if r.get("kind") not in TIMING_KINDS
    ]
